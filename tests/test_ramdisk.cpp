// Ramdisk baseline: POSIX-like semantics plus the emulated kernel
// overheads (syscall latency, global VFS lock, per-page cost) that make it
// slower than a plain memory copy of the same bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/units.hpp"
#include "ramdisk/ramdisk.hpp"

namespace nvmcp::ramdisk {
namespace {

RamDiskConfig fast_cfg() {
  RamDiskConfig c;
  c.syscall_latency = 0;
  c.per_page_kernel_cost = 0;
  c.lock_acquire_cost = 0;
  return c;
}

TEST(RamDisk, WriteReadRoundTrip) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("/ckpt/a");
  std::vector<std::byte> src(300 * KiB);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(fs.write(fd, src.data(), src.size()), src.size());
  fs.lseek(fd, 0);
  std::vector<std::byte> dst(src.size());
  EXPECT_EQ(fs.read(fd, dst.data(), dst.size()), dst.size());
  EXPECT_EQ(0, std::memcmp(src.data(), dst.data(), src.size()));
  fs.close(fd);
}

TEST(RamDisk, SequentialWritesAppend) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("f");
  const char a[] = "hello ";
  const char b[] = "world";
  fs.write(fd, a, 6);
  fs.write(fd, b, 5);
  EXPECT_EQ(fs.file_size("f"), 11u);
  fs.lseek(fd, 6);
  char out[6] = {};
  fs.read(fd, out, 5);
  EXPECT_STREQ(out, "world");
}

TEST(RamDisk, TruncateOnOpen) {
  RamDiskFs fs(fast_cfg());
  int fd = fs.open("f");
  fs.write(fd, "data", 4);
  fs.close(fd);
  fd = fs.open("f", /*truncate=*/true);
  EXPECT_EQ(fs.file_size("f"), 0u);
  fs.close(fd);
}

TEST(RamDisk, ReadPastEofReturnsShort) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("f");
  fs.write(fd, "abc", 3);
  fs.lseek(fd, 1);
  char buf[10];
  EXPECT_EQ(fs.read(fd, buf, 10), 2u);
}

TEST(RamDisk, BadFdThrows) {
  RamDiskFs fs(fast_cfg());
  char b;
  EXPECT_THROW(fs.write(99, &b, 1), NvmcpError);
  EXPECT_THROW(fs.read(99, &b, 1), NvmcpError);
  EXPECT_THROW(fs.lseek(99, 0), NvmcpError);
  EXPECT_THROW(fs.fsync(99), NvmcpError);
}

TEST(RamDisk, UnlinkRemoves) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("gone");
  fs.write(fd, "x", 1);
  fs.close(fd);
  EXPECT_TRUE(fs.exists("gone"));
  fs.unlink("gone");
  EXPECT_FALSE(fs.exists("gone"));
}

TEST(RamDisk, SyscallsAreCounted) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("f");   // 1
  fs.write(fd, "abcd", 4);       // 2
  fs.fsync(fd);                  // 3
  fs.close(fd);                  // 4
  EXPECT_EQ(fs.stats().syscalls, 4u);
}

TEST(RamDisk, KernelCostsSlowWritesDown) {
  RamDiskConfig slow;
  slow.syscall_latency = 0;
  slow.lock_acquire_cost = 0;
  slow.per_page_kernel_cost = 2e-6;  // exaggerated for test stability
  RamDiskFs fs(slow);
  const int fd = fs.open("f");
  std::vector<std::byte> buf(4 * MiB);
  const Stopwatch sw;
  fs.write(fd, buf.data(), buf.size());
  // 1024 pages * 2us = ~2ms of injected kernel time.
  EXPECT_GT(sw.elapsed(), 0.0015);
  EXPECT_GT(fs.stats().kernel_seconds, 0.0015);
}

TEST(RamDisk, ConcurrentWritersSerializeOnVfsLock) {
  RamDiskConfig cfg;
  cfg.syscall_latency = 0;
  cfg.lock_acquire_cost = 0;
  cfg.per_page_kernel_cost = 1e-6;
  RamDiskFs fs(cfg);
  constexpr int kWriters = 4;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&fs, w] {
      const int fd = fs.open("f" + std::to_string(w));
      std::vector<std::byte> buf(1 * MiB);
      fs.write(fd, buf.data(), buf.size());
      fs.close(fd);
    });
  }
  for (auto& t : threads) t.join();
  const RamDiskStats s = fs.stats();
  EXPECT_GT(s.lock_acquisitions, 0u);
  // With a contended global lock, someone must have waited.
  EXPECT_GT(s.lock_wait_seconds, 0.0);
}

TEST(RamDisk, ResetStatsClears) {
  RamDiskFs fs(fast_cfg());
  const int fd = fs.open("f");
  fs.write(fd, "x", 1);
  fs.reset_stats();
  EXPECT_EQ(fs.stats().syscalls, 0u);
  EXPECT_EQ(fs.stats().bytes_written, 0u);
}

}  // namespace
}  // namespace nvmcp::ramdisk
