// Cluster-scale simulator: strategy coverage under correlated failures,
// scale behavior, and the 10k-node acceptance sweep (under the `stress`
// ctest label via the *Acceptance* filter).
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cluster_scale.hpp"

namespace nvmcp::sim {
namespace {

ScaleConfig base(int nodes) {
  ScaleConfig cfg;
  cfg.topo.nodes = nodes;
  cfg.topo.nodes_per_rack = 16;
  cfg.topo.racks_per_switch = 8;
  cfg.compute_per_iter = 4.0;
  cfg.compute_jitter = 0.01;
  cfg.comm_bytes_per_iter = 0.8e9;
  cfg.total_compute = 120.0;
  cfg.ckpt_bytes = 4.7e9;
  cfg.local_interval = 40.0;
  cfg.remote_interval = 120.0;
  return cfg;
}

TEST(SimScale, CleanRunLandsNearIdeal) {
  ScaleConfig cfg = base(64);
  cfg.remote_enabled = false;
  cfg.local_interval = 1e9;  // no checkpoints, no failures: jitter only
  const ScaleResult r = run_scale_cluster(cfg);
  EXPECT_GT(r.efficiency, 0.90);
  EXPECT_LT(r.efficiency, 1.0);  // straggler jitter keeps it below ideal
  EXPECT_EQ(r.local_checkpoints, 0);
  EXPECT_EQ(r.unrecoverable, 0);
  EXPECT_EQ(r.iterations, 30);  // 120 / 4
  EXPECT_TRUE(r.queue_drained);
}

TEST(SimScale, CheckpointingCostsEfficiency) {
  ScaleConfig cfg = base(64);
  cfg.remote_enabled = false;
  cfg.local_interval = 1e9;
  const double no_ckpt = run_scale_cluster(cfg).efficiency;
  cfg.local_interval = 40.0;
  cfg.remote_enabled = true;
  const ScaleResult with_ckpt = run_scale_cluster(cfg);
  EXPECT_LT(with_ckpt.efficiency, no_ckpt);
  EXPECT_GT(with_ckpt.local_checkpoints, 0);
  EXPECT_GT(with_ckpt.nvm_bytes, 0.0);
  EXPECT_GT(with_ckpt.remote_bytes, 0.0);
}

TEST(SimScale, StragglersGrowWithScale) {
  ScaleConfig small = base(64);
  small.remote_enabled = false;
  small.local_interval = 1e9;
  ScaleConfig big = small;
  big.topo.nodes = 1024;
  const double e_small = run_scale_cluster(small).efficiency;
  const double e_big = run_scale_cluster(big).efficiency;
  EXPECT_LT(e_big, e_small);  // max of N jitter draws grows ~ln N
}

TEST(SimScale, PairwiseBuddyDiesWithItsRack) {
  // One forced rack outage after the first remote cut. In-rack pairwise
  // replication (stride 0) loses both copies -> job restarts from zero;
  // a cross-rack ring rolls back only to the committed cut.
  ScaleConfig cfg = base(128);
  cfg.strategy = RemoteStrategy::kReplication;
  cfg.total_compute = 240.0;
  cfg.forced_outages.push_back({200.0, OutageKind::kRackOutage, 3});

  cfg.ring_rack_stride = 0;  // the paper's in-rack pairwise buddy
  const ScaleResult pairwise = run_scale_cluster(cfg);
  cfg.ring_rack_stride = 1;
  const ScaleResult ring = run_scale_cluster(cfg);

  ASSERT_EQ(pairwise.rack_outages, 1);
  ASSERT_EQ(ring.rack_outages, 1);
  EXPECT_EQ(pairwise.unrecoverable, 1);
  EXPECT_EQ(ring.unrecoverable, 0);
  EXPECT_EQ(ring.recoveries_buddy, 1);
  EXPECT_GT(ring.efficiency, pairwise.efficiency);
  EXPECT_LT(ring.lost_work, pairwise.lost_work);
}

TEST(SimScale, RSParitySurvivesRackButNotSwitchOutage) {
  ScaleConfig cfg = base(256);  // 16 racks, 2 switches
  cfg.strategy = RemoteStrategy::kRSParity;
  cfg.total_compute = 240.0;
  cfg.forced_outages.push_back({200.0, OutageKind::kRackOutage, 5});
  const ScaleResult rack_hit = run_scale_cluster(cfg);
  ASSERT_EQ(rack_hit.rack_outages, 1);
  // Rack-transposed groups lose at most one member per rack outage.
  EXPECT_EQ(rack_hit.unrecoverable, 0);
  EXPECT_EQ(rack_hit.recoveries_parity, 1);

  cfg.forced_outages.back() = {200.0, OutageKind::kSwitchOutage, 0};
  const ScaleResult switch_hit = run_scale_cluster(cfg);
  ASSERT_EQ(switch_hit.switch_outages, 1);
  // 8 racks die at once: every group loses more than m members.
  EXPECT_EQ(switch_hit.unrecoverable, 1);
  EXPECT_GT(switch_hit.lost_work, rack_hit.lost_work);
}

TEST(SimScale, HybridSurvivesSwitchOutage) {
  ScaleConfig cfg = base(256);
  cfg.strategy = RemoteStrategy::kHybrid;
  cfg.hybrid_replica_every = 1;  // replica at every cut for the test
  cfg.total_compute = 240.0;
  cfg.forced_outages.push_back({200.0, OutageKind::kSwitchOutage, 0});
  const ScaleResult r = run_scale_cluster(cfg);
  ASSERT_EQ(r.switch_outages, 1);
  EXPECT_EQ(r.unrecoverable, 0);
  EXPECT_EQ(r.recoveries_buddy, 1);  // cross-switch ring replica took over
}

TEST(SimScale, RSShipsLessButRebuildsSlower) {
  // Per remote cut, RS ships m/k of the replication volume; the price is a
  // k-share rebuild on every hard failure.
  ScaleConfig repl = base(128);
  repl.strategy = RemoteStrategy::kReplication;
  repl.node_hard_mtbf = 0;
  ScaleConfig rs = repl;
  rs.strategy = RemoteStrategy::kRSParity;
  const ScaleResult a = run_scale_cluster(repl);
  const ScaleResult b = run_scale_cluster(rs);
  ASSERT_GT(a.remote_cuts, 0);
  ASSERT_GT(b.remote_cuts, 0);
  EXPECT_LT(b.remote_bytes, 0.5 * a.remote_bytes);

  repl.node_hard_mtbf = 8.0e2;
  rs.node_hard_mtbf = 8.0e2;
  const ScaleResult af = run_scale_cluster(repl);
  const ScaleResult bf = run_scale_cluster(rs);
  ASSERT_GT(af.hard_failures, 0);
  ASSERT_GT(bf.hard_failures, 0);
  EXPECT_GT(bf.restart_seconds, af.restart_seconds);
}

TEST(SimScale, SoftFailuresRecoverLocally) {
  ScaleConfig cfg = base(64);
  cfg.forced_outages.push_back({60.0, OutageKind::kNodeSoft, 5});
  cfg.forced_outages.push_back({110.0, OutageKind::kNodeSoft, 40});
  const ScaleResult r = run_scale_cluster(cfg);
  ASSERT_EQ(r.soft_failures, 2);
  EXPECT_EQ(r.recoveries_local, r.soft_failures);
  EXPECT_GT(r.lost_work, 0.0);
  EXPECT_TRUE(r.queue_drained);
}

TEST(SimScale, EfficiencyIsWallConsistent) {
  ScaleConfig cfg = base(64);
  cfg.node_soft_mtbf = 3.0e4;
  const ScaleResult r = run_scale_cluster(cfg);
  EXPECT_NEAR(r.efficiency * r.wall, r.ideal, 1e-6 * r.ideal);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LT(r.efficiency, 1.0);
}

// 10 240-node correlated-failure frontier point: the acceptance shape from
// the issue. Each run fires >10^6 engine events; a rack outage and a switch
// outage land mid-run on top of stochastic soft failures, so the three
// strategies separate exactly where the design says they should. Registered
// under the `stress` ctest label.
TEST(SimScaleAcceptance, TenThousandNodeFrontierSweep) {
  auto run_strategy = [](RemoteStrategy strategy) {
    ScaleConfig cfg = base(10240);  // 640 racks, 80 switches
    cfg.strategy = strategy;
    cfg.total_compute = 240.0;
    cfg.node_soft_mtbf = 2.0e6;  // cluster-wide: a soft failure every ~195 s
    cfg.forced_outages.push_back({100.0, OutageKind::kRackOutage, 17});
    cfg.forced_outages.push_back({180.0, OutageKind::kSwitchOutage, 3});
    cfg.seed = 42;
    const ScaleResult a = run_scale_cluster(cfg);
    const ScaleResult b = run_scale_cluster(cfg);
    // Completes, drains, and replays bit-identically.
    EXPECT_TRUE(a.queue_drained) << to_string(strategy);
    EXPECT_GT(a.efficiency, 0.0);
    EXPECT_LE(a.efficiency, 1.0);
    EXPECT_GT(a.events_fired, 1000000u) << to_string(strategy);
    EXPECT_EQ(a.rack_outages, 1);
    EXPECT_EQ(a.switch_outages, 1);
    EXPECT_EQ(a.wall, b.wall) << to_string(strategy);
    EXPECT_EQ(a.lost_work, b.lost_work);
    EXPECT_EQ(a.events_fired, b.events_fired);
    return a;
  };
  const ScaleResult repl = run_strategy(RemoteStrategy::kReplication);
  const ScaleResult rs = run_strategy(RemoteStrategy::kRSParity);
  const ScaleResult hybrid = run_strategy(RemoteStrategy::kHybrid);
  // Cross-rack ring survives the rack outage but not the switch outage
  // (stride 1 stays inside the switch domain); rack-transposed RS groups
  // span switch boundaries, so 8 dead racks exceed m = 2 somewhere.
  EXPECT_EQ(repl.unrecoverable, 1);
  EXPECT_EQ(rs.unrecoverable, 1);
  // Hybrid's cross-switch replica covers both correlated outages.
  EXPECT_EQ(hybrid.unrecoverable, 0);
  EXPECT_GT(hybrid.efficiency, repl.efficiency);
  EXPECT_GT(hybrid.efficiency, rs.efficiency);
  // RS ships ~m/k of replication's redundancy volume.
  EXPECT_LT(rs.remote_bytes, repl.remote_bytes);
}

}  // namespace
}  // namespace nvmcp::sim
