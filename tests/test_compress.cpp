// LZ block compression: round trips across data shapes, format edge
// cases, corrupt-stream rejection, and property sweeps.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/lz.hpp"

namespace nvmcp::compress {
namespace {

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& in,
                                    double* ratio = nullptr) {
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  EXPECT_GT(csize, 0u);
  if (ratio && !in.empty()) {
    *ratio = static_cast<double>(csize) / static_cast<double>(in.size());
  }
  packed.resize(csize);
  std::vector<std::uint8_t> out(in.size() + 16);
  const std::size_t dsize =
      lz_decompress(packed.data(), packed.size(), out.data(), out.size());
  out.resize(dsize);
  return out;
}

TEST(Lz, EmptyInput) {
  const std::vector<std::uint8_t> in;
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lz, TinyInputs) {
  for (std::size_t n = 1; n <= 8; ++n) {
    std::vector<std::uint8_t> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(i * 41);
    }
    EXPECT_EQ(roundtrip(in), in) << "n=" << n;
  }
}

TEST(Lz, ZerosCompressWell) {
  std::vector<std::uint8_t> in(1 << 20, 0);
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.01);
}

TEST(Lz, RepetitivePatternCompresses) {
  std::vector<std::uint8_t> in;
  const std::string word = "checkpoint-restart-";
  while (in.size() < 100000) {
    in.insert(in.end(), word.begin(), word.end());
  }
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.1);
}

TEST(Lz, RandomDataRoundTripsWithoutBlowup) {
  Rng rng(3);
  std::vector<std::uint8_t> in(256 * 1024);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  double ratio = 0;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 1.05);  // bounded expansion on incompressible input
}

TEST(Lz, OverlappingMatchReplication) {
  // "abcabcabc..." forces matches with offset < length.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 5000; ++i) {
    in.push_back(static_cast<std::uint8_t>('a' + i % 3));
  }
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lz, SmoothFloatArrayCompresses) {
  // HPC-checkpoint-like payload: a smooth double array.
  std::vector<double> field(32768);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = 300.0 + 0.001 * static_cast<double>(i % 1000);
  }
  std::vector<std::uint8_t> in(field.size() * 8);
  std::memcpy(in.data(), field.data(), in.size());
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.7);
}

TEST(Lz, InsufficientOutputCapacityReturnsZero) {
  Rng rng(4);
  std::vector<std::uint8_t> in(10000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> small(100);
  EXPECT_EQ(lz_compress(in.data(), in.size(), small.data(), small.size()),
            0u);
}

TEST(Lz, DecompressRejectsTruncatedStream) {
  std::vector<std::uint8_t> in(5000, 7);
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  std::vector<std::uint8_t> out(in.size());
  EXPECT_THROW(
      lz_decompress(packed.data(), csize / 2, out.data(), out.size()),
      NvmcpError);
}

TEST(Lz, DecompressRejectsOutputOverflow) {
  std::vector<std::uint8_t> in(5000, 7);
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  std::vector<std::uint8_t> out(10);  // far too small
  EXPECT_THROW(lz_decompress(packed.data(), csize, out.data(), out.size()),
               NvmcpError);
}

TEST(Lz, DecompressRejectsBadOffset) {
  // Token demanding a match before the output start: lit_len 0, match,
  // offset 5 with nothing written yet.
  const std::uint8_t bogus[] = {0x01, 0x05, 0x00};
  std::vector<std::uint8_t> out(64);
  EXPECT_THROW(lz_decompress(bogus, sizeof(bogus), out.data(), out.size()),
               NvmcpError);
}

TEST(Lz, ExtendedRunLengthBoundaries) {
  // Token nibbles saturate at 15 and spill into 255-run extension bytes:
  // exercise literal runs and match runs right at every spill boundary
  // (15, 15+255, 15+2*255, +/-1) so the extension encode/decode paths
  // round trip exactly.
  Rng rng(11);
  const std::size_t bounds[] = {14, 15, 16, 269, 270, 271, 524, 525, 526};
  for (const std::size_t lit : bounds) {
    for (const std::size_t run : bounds) {
      std::vector<std::uint8_t> in;
      // Incompressible prefix of `lit` bytes forces a literal run of that
      // length; the zero tail forces one long match run.
      for (std::size_t i = 0; i < lit; ++i) {
        in.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
      in.insert(in.end(), run + 16, 0);
      EXPECT_EQ(roundtrip(in), in) << "lit=" << lit << " run=" << run;
    }
  }
}

TEST(Lz, FuzzRoundTripRandomStructured) {
  // Fuzz-style sweep: many seeds, random mixes of runs/ramps/noise at
  // random sizes, every one byte-exact through compress + decompress.
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> in(1 + rng.next_below(64 * 1024));
    std::size_t i = 0;
    while (i < in.size()) {
      const std::size_t run =
          std::min(in.size() - i, 1 + rng.next_below(1024));
      const auto kind = rng.next_below(4);
      for (std::size_t j = 0; j < run; ++j) {
        switch (kind) {
          case 0: in[i + j] = 0x5a; break;
          case 1: in[i + j] = static_cast<std::uint8_t>(j & 0xff); break;
          case 2: in[i + j] = static_cast<std::uint8_t>((i + j) / 7); break;
          default: in[i + j] = static_cast<std::uint8_t>(rng.next_u64());
        }
      }
      i += run;
    }
    EXPECT_EQ(roundtrip(in), in) << "seed=" << seed;
  }
}

TEST(Lz, EveryTruncationPointRejectedOrPrefixExact) {
  // Cut a valid stream at every byte: the decoder must either throw
  // (stream ends mid-token, mid-run, mid-offset, or mid-literal) or
  // stop cleanly having produced an exact prefix of the original --
  // never read past the cut or fabricate bytes.
  Rng rng(13);
  std::vector<std::uint8_t> in(8192);
  std::size_t i = 0;
  while (i < in.size()) {
    const std::size_t run = std::min(in.size() - i, 1 + rng.next_below(200));
    const bool noise = rng.next_below(2) == 0;
    for (std::size_t j = 0; j < run; ++j) {
      in[i + j] = noise ? static_cast<std::uint8_t>(rng.next_u64()) : 0x42;
    }
    i += run;
  }
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  ASSERT_GT(csize, 0u);
  std::vector<std::uint8_t> out(in.size());
  for (std::size_t cut = 0; cut < csize; ++cut) {
    try {
      const std::size_t n =
          lz_decompress(packed.data(), cut, out.data(), out.size());
      ASSERT_LE(n, in.size()) << "cut=" << cut;
      EXPECT_EQ(std::memcmp(out.data(), in.data(), n), 0) << "cut=" << cut;
    } catch (const NvmcpError&) {
      // Rejected: exactly what a truncated stream deserves.
    }
  }
}

TEST(Lz, SingleByteCorruptionNeverEscapesBounds) {
  // Flip every byte of a valid stream (one at a time): decode must either
  // throw or produce at most the declared capacity -- wild offsets and
  // inflated run lengths all hit a guard instead of memory.
  std::vector<std::uint8_t> in(4096);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i % 97);
  }
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  ASSERT_GT(csize, 0u);
  std::vector<std::uint8_t> out(in.size());
  for (std::size_t pos = 0; pos < csize; ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      std::vector<std::uint8_t> evil(packed.begin(), packed.begin() + csize);
      evil[pos] ^= flip;
      try {
        const std::size_t n =
            lz_decompress(evil.data(), evil.size(), out.data(), out.size());
        EXPECT_LE(n, out.size());
      } catch (const NvmcpError&) {
      }
    }
  }
}

class LzPropertySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LzPropertySweep, RoundTripMixedContent) {
  const auto [size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::uint8_t> in(size);
  // Mixed content: runs of a repeated byte, ascending ramps, and noise.
  std::size_t i = 0;
  while (i < size) {
    const std::size_t run =
        std::min<std::size_t>(size - i, 1 + rng.next_below(512));
    switch (rng.next_below(3)) {
      case 0: {
        const auto b = static_cast<std::uint8_t>(rng.next_u64());
        for (std::size_t j = 0; j < run; ++j) in[i + j] = b;
        break;
      }
      case 1:
        for (std::size_t j = 0; j < run; ++j) {
          in[i + j] = static_cast<std::uint8_t>(j);
        }
        break;
      default:
        for (std::size_t j = 0; j < run; ++j) {
          in[i + j] = static_cast<std::uint8_t>(rng.next_u64());
        }
    }
    i += run;
  }
  EXPECT_EQ(roundtrip(in), in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzPropertySweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{4096},
                                         std::size_t{65536},
                                         std::size_t{1 << 20}),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace nvmcp::compress
