// LZ block compression: round trips across data shapes, format edge
// cases, corrupt-stream rejection, and property sweeps.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/lz.hpp"

namespace nvmcp::compress {
namespace {

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& in,
                                    double* ratio = nullptr) {
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  EXPECT_GT(csize, 0u);
  if (ratio && !in.empty()) {
    *ratio = static_cast<double>(csize) / static_cast<double>(in.size());
  }
  packed.resize(csize);
  std::vector<std::uint8_t> out(in.size() + 16);
  const std::size_t dsize =
      lz_decompress(packed.data(), packed.size(), out.data(), out.size());
  out.resize(dsize);
  return out;
}

TEST(Lz, EmptyInput) {
  const std::vector<std::uint8_t> in;
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lz, TinyInputs) {
  for (std::size_t n = 1; n <= 8; ++n) {
    std::vector<std::uint8_t> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(i * 41);
    }
    EXPECT_EQ(roundtrip(in), in) << "n=" << n;
  }
}

TEST(Lz, ZerosCompressWell) {
  std::vector<std::uint8_t> in(1 << 20, 0);
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.01);
}

TEST(Lz, RepetitivePatternCompresses) {
  std::vector<std::uint8_t> in;
  const std::string word = "checkpoint-restart-";
  while (in.size() < 100000) {
    in.insert(in.end(), word.begin(), word.end());
  }
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.1);
}

TEST(Lz, RandomDataRoundTripsWithoutBlowup) {
  Rng rng(3);
  std::vector<std::uint8_t> in(256 * 1024);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  double ratio = 0;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 1.05);  // bounded expansion on incompressible input
}

TEST(Lz, OverlappingMatchReplication) {
  // "abcabcabc..." forces matches with offset < length.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 5000; ++i) {
    in.push_back(static_cast<std::uint8_t>('a' + i % 3));
  }
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lz, SmoothFloatArrayCompresses) {
  // HPC-checkpoint-like payload: a smooth double array.
  std::vector<double> field(32768);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = 300.0 + 0.001 * static_cast<double>(i % 1000);
  }
  std::vector<std::uint8_t> in(field.size() * 8);
  std::memcpy(in.data(), field.data(), in.size());
  double ratio = 1;
  EXPECT_EQ(roundtrip(in, &ratio), in);
  EXPECT_LT(ratio, 0.7);
}

TEST(Lz, InsufficientOutputCapacityReturnsZero) {
  Rng rng(4);
  std::vector<std::uint8_t> in(10000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> small(100);
  EXPECT_EQ(lz_compress(in.data(), in.size(), small.data(), small.size()),
            0u);
}

TEST(Lz, DecompressRejectsTruncatedStream) {
  std::vector<std::uint8_t> in(5000, 7);
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  std::vector<std::uint8_t> out(in.size());
  EXPECT_THROW(
      lz_decompress(packed.data(), csize / 2, out.data(), out.size()),
      NvmcpError);
}

TEST(Lz, DecompressRejectsOutputOverflow) {
  std::vector<std::uint8_t> in(5000, 7);
  std::vector<std::uint8_t> packed(max_compressed_size(in.size()));
  const std::size_t csize =
      lz_compress(in.data(), in.size(), packed.data(), packed.size());
  std::vector<std::uint8_t> out(10);  // far too small
  EXPECT_THROW(lz_decompress(packed.data(), csize, out.data(), out.size()),
               NvmcpError);
}

TEST(Lz, DecompressRejectsBadOffset) {
  // Token demanding a match before the output start: lit_len 0, match,
  // offset 5 with nothing written yet.
  const std::uint8_t bogus[] = {0x01, 0x05, 0x00};
  std::vector<std::uint8_t> out(64);
  EXPECT_THROW(lz_decompress(bogus, sizeof(bogus), out.data(), out.size()),
               NvmcpError);
}

class LzPropertySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LzPropertySweep, RoundTripMixedContent) {
  const auto [size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::uint8_t> in(size);
  // Mixed content: runs of a repeated byte, ascending ramps, and noise.
  std::size_t i = 0;
  while (i < size) {
    const std::size_t run =
        std::min<std::size_t>(size - i, 1 + rng.next_below(512));
    switch (rng.next_below(3)) {
      case 0: {
        const auto b = static_cast<std::uint8_t>(rng.next_u64());
        for (std::size_t j = 0; j < run; ++j) in[i + j] = b;
        break;
      }
      case 1:
        for (std::size_t j = 0; j < run; ++j) {
          in[i + j] = static_cast<std::uint8_t>(j);
        }
        break;
      default:
        for (std::size_t j = 0; j < run; ++j) {
          in[i + j] = static_cast<std::uint8_t>(rng.next_u64());
        }
    }
    i += run;
  }
  EXPECT_EQ(roundtrip(in), in);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzPropertySweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{4096},
                                         std::size_t{65536},
                                         std::size_t{1 << 20}),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace nvmcp::compress
