// Lazy restore: restore-on-first-access semantics, checksum verification
// in the fault path, untouched chunks costing nothing, and concurrent
// first-touchers.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "alloc/nvmalloc.hpp"
#include "common/rng.hpp"

namespace nvmcp {
namespace {

using LazyState = vmem::ProtectionManager::LazyState;

class LazyRestoreTest : public ::testing::Test {
 protected:
  LazyRestoreTest() {
    NvmConfig cfg;
    cfg.capacity = 32 * MiB;
    cfg.throttle = false;
    dev_ = std::make_unique<NvmDevice>(cfg);
    container_ = std::make_unique<vmem::Container>(*dev_);
    allocator_ = std::make_unique<alloc::ChunkAllocator>(*container_);
  }

  alloc::Chunk* make_committed_chunk(const char* name, std::size_t size,
                                     std::uint64_t seed) {
    alloc::Chunk* c = allocator_->nvalloc(name, size, true);
    fill(*c, seed);
    allocator_->checkpoint_chunk(*c, 1);
    return c;
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  bool matches(const alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    const auto* p = static_cast<const std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      if (std::memcmp(p + i, &v, 8) != 0) return false;
    }
    return true;
  }

  std::unique_ptr<NvmDevice> dev_;
  std::unique_ptr<vmem::Container> container_;
  std::unique_ptr<alloc::ChunkAllocator> allocator_;
};

TEST_F(LazyRestoreTest, FirstReadTriggersRestore) {
  alloc::Chunk* c = make_committed_chunk("lazy_read", 256 * KiB, 42);
  fill(*c, 99);  // scribble after the checkpoint
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kArmed);

  // A *read* faults and pulls the committed data in.
  volatile std::byte first = static_cast<const std::byte*>(c->data())[0];
  (void)first;
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kDone);
  EXPECT_TRUE(matches(*c, 42));
  EXPECT_TRUE(c->dirty_local());  // restored data must re-persist
}

TEST_F(LazyRestoreTest, FirstWriteAlsoTriggersRestore) {
  alloc::Chunk* c = make_committed_chunk("lazy_write", 64 * KiB, 7);
  fill(*c, 100);
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  static_cast<std::byte*>(c->data())[8] = std::byte{0xAA};
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kDone);
  // Everything except the written byte matches the checkpoint.
  auto* p = static_cast<std::byte*>(c->data());
  EXPECT_EQ(p[8], std::byte{0xAA});
  Rng rng(7);
  std::uint64_t v = rng.next_u64();
  EXPECT_EQ(0, std::memcmp(p, &v, 8));  // first word untouched
}

TEST_F(LazyRestoreTest, UntouchedChunkNeverCopies) {
  alloc::Chunk* c = make_committed_chunk("lazy_idle", 1 * MiB, 3);
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  const auto reads_before = dev_->stats().bytes_read;
  // No access at all: no data movement (the whole point of laziness).
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kArmed);
  EXPECT_EQ(dev_->stats().bytes_read, reads_before);
}

TEST_F(LazyRestoreTest, ChecksumFailureReported) {
  alloc::Chunk* c = make_committed_chunk("lazy_bad", 64 * KiB, 5);
  const auto& rec = c->record();
  dev_->data()[rec.slot_off[rec.committed] + 17] ^= std::byte{0xFF};
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  volatile std::byte b = static_cast<const std::byte*>(c->data())[0];
  (void)b;
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kFailed);
}

TEST_F(LazyRestoreTest, UncommittedChunkCannotArm) {
  alloc::Chunk* c = allocator_->nvalloc("never", 4 * KiB, true);
  EXPECT_FALSE(allocator_->restore_chunk_lazy(*c));
}

TEST_F(LazyRestoreTest, ConcurrentFirstTouchersSeeConsistentData) {
  alloc::Chunk* c = make_committed_chunk("lazy_mt", 512 * KiB, 11);
  fill(*c, 200);
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      // Each thread reads a different region; every read must see the
      // fully restored payload regardless of who faulted first.
      const std::size_t off =
          static_cast<std::size_t>(t) * (c->size() / 4);
      Rng rng(11);
      for (std::size_t i = 0; i < off; i += 8) rng.next_u64();
      const auto* p = static_cast<const std::byte*>(c->data()) + off;
      for (std::size_t i = 0; i + 8 <= c->size() / 4; i += 8) {
        const std::uint64_t v = rng.next_u64();
        if (std::memcmp(p + i, &v, 8) != 0) {
          ++mismatches;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(allocator_->lazy_state(*c), LazyState::kDone);
}

TEST_F(LazyRestoreTest, RearmAfterNewCheckpoint) {
  alloc::Chunk* c = make_committed_chunk("lazy_again", 64 * KiB, 21);
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  volatile std::byte b = static_cast<const std::byte*>(c->data())[0];
  (void)b;
  EXPECT_TRUE(matches(*c, 21));

  fill(*c, 22);
  allocator_->checkpoint_chunk(*c, 2);
  fill(*c, 23);
  ASSERT_TRUE(allocator_->restore_chunk_lazy(*c));
  b = static_cast<const std::byte*>(c->data())[0];
  EXPECT_TRUE(matches(*c, 22));
}

}  // namespace
}  // namespace nvmcp
