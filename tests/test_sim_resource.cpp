// Processor-sharing bandwidth resource: exact completion times for single
// and concurrent flows, cancellation, and timeline accounting.
#include <gtest/gtest.h>

#include "sim/resource.hpp"

namespace nvmcp::sim {
namespace {

TEST(SimResource, SingleFlowCompletesAtRate) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);  // 100 bytes/s
  double done_at = -1;
  pipe.submit(250.0, 0, [&](double) { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 2.5, 1e-9);
}

TEST(SimResource, TwoEqualFlowsShareFairly) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  double a_done = -1, b_done = -1;
  pipe.submit(100.0, 0, [&](double) { a_done = eng.now(); });
  pipe.submit(100.0, 0, [&](double) { b_done = eng.now(); });
  eng.run();
  // 200 bytes through a 100 B/s pipe: both finish at t=2.
  EXPECT_NEAR(a_done, 2.0, 1e-9);
  EXPECT_NEAR(b_done, 2.0, 1e-9);
}

TEST(SimResource, LateArrivalSlowsExistingFlow) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  double a_done = -1, b_done = -1;
  pipe.submit(200.0, 0, [&](double) { a_done = eng.now(); });
  eng.schedule_at(1.0, [&] {
    // At t=1, flow A has 100 bytes left; now it shares.
    pipe.submit(50.0, 1, [&](double) { b_done = eng.now(); });
  });
  eng.run();
  // From t=1: A=100 left, B=50, each at 50 B/s. B done at t=2; then A has
  // 50 left at 100 B/s: done at 2.5.
  EXPECT_NEAR(b_done, 2.0, 1e-9);
  EXPECT_NEAR(a_done, 2.5, 1e-9);
}

TEST(SimResource, DepartureSpeedsUpRemaining) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  double big_done = -1;
  pipe.submit(50.0, 0, nullptr);         // finishes at t=1 (sharing)
  pipe.submit(150.0, 0, [&](double) { big_done = eng.now(); });
  eng.run();
  // Until t=1 both at 50 B/s (small:50 done, big:100 left); then big alone
  // at 100 B/s: one more second.
  EXPECT_NEAR(big_done, 2.0, 1e-9);
}

TEST(SimResource, CancelRemovesFlow) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  bool cancelled_fired = false;
  double other_done = -1;
  auto victim = pipe.submit(1000.0, 0,
                            [&](double) { cancelled_fired = true; });
  pipe.submit(100.0, 0, [&](double) { other_done = eng.now(); });
  eng.schedule_at(0.5, [&] { pipe.cancel(victim); });
  eng.run();
  EXPECT_FALSE(cancelled_fired);
  // 0..0.5s shared (other moves 25); then alone: 75 left at 100 B/s.
  EXPECT_NEAR(other_done, 1.25, 1e-9);
}

TEST(SimResource, CancelAllSilencesEverything) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  int completions = 0;
  pipe.submit(100.0, 0, [&](double) { ++completions; });
  pipe.submit(200.0, 0, [&](double) { ++completions; });
  eng.schedule_at(0.1, [&] { pipe.cancel_all(); });
  eng.run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(pipe.active_flows(), 0u);
}

TEST(SimResource, TimelineTracksBytesByClass) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0, /*bucket=*/1.0);
  pipe.submit(100.0, 0, nullptr);
  pipe.submit(300.0, 1, nullptr);
  eng.run();
  EXPECT_NEAR(pipe.total_bytes(0), 100.0, 1e-6);
  EXPECT_NEAR(pipe.total_bytes(1), 300.0, 1e-6);
}

TEST(SimResource, PeakRateRespectsCapacity) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0, 1.0);
  pipe.submit(500.0, 1, nullptr);
  eng.run();
  EXPECT_LE(pipe.timeline(1).peak_rate(), 100.0 + 1e-6);
}

TEST(SimResource, ZeroByteFlowCompletesImmediately) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  double done_at = -1;
  pipe.submit(0.0, 0, [&](double) { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 0.0, 1e-6);
}

TEST(SimResource, ElapsedReportedToCallback) {
  Engine eng;
  SharedBandwidth pipe(eng, 100.0);
  double elapsed = -1;
  eng.schedule_at(3.0, [&] {
    pipe.submit(100.0, 0, [&](double e) { elapsed = e; });
  });
  eng.run();
  EXPECT_NEAR(elapsed, 1.0, 1e-9);
}

}  // namespace
}  // namespace nvmcp::sim
