#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace nvmcp::sim {
namespace {

TEST(SimEngine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(SimEngine, TiesBreakByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(1.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, ScheduleInIsRelative) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(5.0, [&] {
    eng.schedule_in(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastSchedulingThrows) {
  Engine eng;
  eng.schedule_at(10.0, [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(5.0, [] {}), NvmcpError);
}

TEST(SimEngine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  EventHandle h = eng.schedule_at(1.0, [&] { fired = true; });
  h.cancel();
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(SimEngine, CancelIsIdempotentAndSafeAfterRun) {
  Engine eng;
  EventHandle h = eng.schedule_at(1.0, [] {});
  eng.run();
  h.cancel();
  h.cancel();
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    eng.schedule_at(t, [&fired, &eng] { fired.push_back(eng.now()); });
  }
  eng.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(eng.now(), 2.5);
  EXPECT_EQ(eng.pending(), 2u);
  eng.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimEngine, StepReturnsFalseWhenEmpty) {
  Engine eng;
  EXPECT_FALSE(eng.step());
  eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

// Regression: valid() used to keep returning true for a cancelled event
// until the queue happened to pop it, so callers polling a handle saw a
// "live" event that would never fire.
TEST(SimEngine, CancelInvalidatesHandleImmediately) {
  Engine eng;
  EventHandle h = eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(h.valid());
  h.cancel();
  EXPECT_FALSE(h.valid());  // observable before any step()/run()
  EXPECT_EQ(eng.pending(), 0u);
  eng.run();
  EXPECT_EQ(eng.events_fired(), 0u);
}

TEST(SimEngine, PendingExcludesCancelledEvents) {
  Engine eng;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(eng.schedule_at(1.0 + i, [] {}));
  }
  EXPECT_EQ(eng.pending(), 10u);
  for (int i = 0; i < 10; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(eng.pending(), 5u);
  eng.run();
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.events_fired(), 5u);
}

TEST(SimEngine, HandleInvalidAfterFire) {
  Engine eng;
  EventHandle h = eng.schedule_at(1.0, [] {});
  eng.run();
  EXPECT_FALSE(h.valid());
  h.cancel();  // no-op on a fired slot, must not corrupt anything
  bool fired = false;
  EventHandle h2 = eng.schedule_at(2.0, [&] { fired = true; });
  h.cancel();  // stale handle may now alias h2's recycled slot -- must miss
  EXPECT_TRUE(h2.valid());
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(SimEngine, MassTimeTiesFireInScheduleOrder) {
  // 10k events at the same instant (a barrier completing) stress the
  // per-bucket heaps; order must still be schedule order.
  Engine eng;
  std::vector<int> order;
  constexpr int kN = 10000;
  order.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    eng.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngine, CalendarSurvivesMixedTimeScalesAndResize) {
  // Dense near-term events coexisting with far-future outliers (the shape
  // that breaks mean-based bucket widths), plus enough churn to cross the
  // grow and shrink thresholds repeatedly. Self-check: strictly
  // non-decreasing fire times and nothing lost.
  Engine eng;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_u64 = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  int fired = 0;
  double last_t = -1.0;
  int scheduled = 0;
  std::function<void()> burst = [&] {
    ++fired;
    EXPECT_GE(eng.now(), last_t);
    last_t = eng.now();
    for (int i = 0; i < 3 && scheduled < 60000; ++i, ++scheduled) {
      const std::uint64_t r = next_u64();
      double dt;
      if (r % 100 < 90) {
        dt = 1e-6 * static_cast<double>(r % 1000 + 1);  // dense burst
      } else if (r % 100 < 99) {
        dt = static_cast<double>(r % 50 + 1);           // mid-range
      } else {
        dt = 1e6 + static_cast<double>(r % 1000);       // far outlier
      }
      eng.schedule_in(dt, burst);
    }
  };
  for (int i = 0; i < 64; ++i, ++scheduled) eng.schedule_at(0.0, burst);
  eng.run();
  EXPECT_EQ(fired, scheduled);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.events_fired(), static_cast<std::uint64_t>(scheduled));
}

TEST(SimEngine, ReferenceHeapBehavesIdentically) {
  Engine eng(Engine::QueueKind::kBinaryHeapRef);
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  EventHandle h = eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(h.valid());
  h.cancel();
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(eng.pending(), 2u);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_EQ(eng.events_fired(), 2u);
}

TEST(SimEngine, EventsCanRescheduleThemselves) {
  Engine eng;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) eng.schedule_in(1.0, tick);
  };
  eng.schedule_in(1.0, tick);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

}  // namespace
}  // namespace nvmcp::sim
