#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace nvmcp::sim {
namespace {

TEST(SimEngine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(SimEngine, TiesBreakByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(1.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, ScheduleInIsRelative) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(5.0, [&] {
    eng.schedule_in(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastSchedulingThrows) {
  Engine eng;
  eng.schedule_at(10.0, [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(5.0, [] {}), NvmcpError);
}

TEST(SimEngine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  EventHandle h = eng.schedule_at(1.0, [&] { fired = true; });
  h.cancel();
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(SimEngine, CancelIsIdempotentAndSafeAfterRun) {
  Engine eng;
  EventHandle h = eng.schedule_at(1.0, [] {});
  eng.run();
  h.cancel();
  h.cancel();
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    eng.schedule_at(t, [&fired, &eng] { fired.push_back(eng.now()); });
  }
  eng.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(eng.now(), 2.5);
  EXPECT_EQ(eng.pending(), 2u);
  eng.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimEngine, StepReturnsFalseWhenEmpty) {
  Engine eng;
  EXPECT_FALSE(eng.step());
  eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(SimEngine, EventsCanRescheduleThemselves) {
  Engine eng;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) eng.schedule_in(1.0, tick);
  };
  eng.schedule_in(1.0, tick);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

}  // namespace
}  // namespace nvmcp::sim
