#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "nvm/bitmap.hpp"

namespace nvmcp {
namespace {

TEST(AtomicBitmap, SetTestClear) {
  AtomicBitmap bm(200);
  EXPECT_FALSE(bm.test(63));
  bm.set(63);
  bm.set(64);
  bm.set(199);
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(199));
  bm.clear(64);
  EXPECT_FALSE(bm.test(64));
  EXPECT_EQ(bm.count_all(), 2u);
}

TEST(AtomicBitmap, RangeOperations) {
  AtomicBitmap bm(128);
  bm.set_range(10, 20);
  EXPECT_EQ(bm.count_range(0, 128), 20u);
  EXPECT_EQ(bm.count_range(10, 20), 20u);
  EXPECT_EQ(bm.count_range(0, 10), 0u);
  bm.clear_range(15, 5);
  EXPECT_EQ(bm.count_all(), 15u);
}

TEST(AtomicBitmap, ClearAll) {
  AtomicBitmap bm(100);
  bm.set_range(0, 100);
  bm.clear_all();
  EXPECT_EQ(bm.count_all(), 0u);
}

TEST(AtomicBitmap, ForEachSetVisitsExactly) {
  AtomicBitmap bm(64);
  bm.set(3);
  bm.set(17);
  bm.set(63);
  std::vector<std::size_t> seen;
  bm.for_each_set(0, 64, [&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 17, 63}));
}

TEST(AtomicBitmap, ConcurrentSetsAllLand) {
  AtomicBitmap bm(4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bm, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < 4096; i += 4) {
        bm.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bm.count_all(), 4096u);
}

TEST(AtomicBitmap, ResizePreservesNothingButSizes) {
  AtomicBitmap bm(10);
  bm.set(5);
  bm.resize(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.count_all(), 0u);
}

}  // namespace
}  // namespace nvmcp
