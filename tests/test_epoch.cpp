// Epoch subsystem: version-ring retention/rollback, directory attach and
// crash-reset, env-knob resolution, saturation-driven GC, pinning, the
// legacy-slot adoption on depth change, and depth-1 equivalence with the
// paper's two-slot scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <vector>

#include "alloc/nvmalloc.hpp"
#include "common/rng.hpp"
#include "epoch/directory.hpp"
#include "epoch/version_ring.hpp"
#include "nvm/device.hpp"
#include "vmem/container.hpp"

namespace nvmcp::epoch {
namespace {

void fill_pattern(void* dst, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto* p = static_cast<std::byte*>(dst);
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p + i, &v, 8);
  }
}

bool check_pattern(const void* src, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto* p = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    const std::uint64_t v = rng.next_u64();
    if (std::memcmp(p + i, &v, 8) != 0) return false;
  }
  return true;
}

/// RAII env override (knob tests must not leak into other tests).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

struct Stack {
  std::unique_ptr<NvmDevice> dev;
  std::unique_ptr<vmem::Container> cont;
  std::unique_ptr<alloc::ChunkAllocator> alloc;

  explicit Stack(int ring_depth, std::size_t capacity = 32 * MiB) {
    NvmConfig cfg;
    cfg.capacity = capacity;
    cfg.throttle = false;
    dev = std::make_unique<NvmDevice>(cfg);
    cont = std::make_unique<vmem::Container>(*dev);
    alloc::ChunkAllocator::Options opts;
    opts.ring_depth = ring_depth;
    alloc = std::make_unique<alloc::ChunkAllocator>(*cont, opts);
  }
};

TEST(EpochKnobs, ResolutionAndClamping) {
  // Explicit configuration wins over everything.
  EXPECT_EQ(resolve_ring_depth(4), 4u);
  EXPECT_EQ(resolve_gc_floor(3), 3u);
  EXPECT_DOUBLE_EQ(resolve_gc_watermark(0.5), 0.5);
  // Unset env: documented defaults.
  ::unsetenv("NVMCP_EPOCH_RING_DEPTH");
  ::unsetenv("NVMCP_EPOCH_GC_WATERMARK");
  ::unsetenv("NVMCP_EPOCH_GC_FLOOR");
  EXPECT_EQ(resolve_ring_depth(0), 1u);
  EXPECT_DOUBLE_EQ(resolve_gc_watermark(-1), 0.85);
  EXPECT_EQ(resolve_gc_floor(-1), 2u);
  {
    ScopedEnv d("NVMCP_EPOCH_RING_DEPTH", "5");
    ScopedEnv w("NVMCP_EPOCH_GC_WATERMARK", "0.6");
    ScopedEnv f("NVMCP_EPOCH_GC_FLOOR", "3");
    EXPECT_EQ(resolve_ring_depth(0), 5u);
    EXPECT_DOUBLE_EQ(resolve_gc_watermark(-1), 0.6);
    EXPECT_EQ(resolve_gc_floor(-1), 3u);
  }
  {
    // Out-of-range values clamp instead of exploding.
    ScopedEnv d("NVMCP_EPOCH_RING_DEPTH", "99");
    ScopedEnv w("NVMCP_EPOCH_GC_WATERMARK", "7.0");
    EXPECT_EQ(resolve_ring_depth(0), kMaxRingDepth);
    EXPECT_DOUBLE_EQ(resolve_gc_watermark(-1), 1.0);
  }
  EXPECT_EQ(resolve_ring_depth(100), kMaxRingDepth);
}

TEST(VersionRing, RetainsLastNEpochsAndRollsBack) {
  Stack s(/*ring_depth=*/4);
  alloc::Chunk* c = s.alloc->nvalloc("ring", 64 * KiB, true);
  for (std::uint64_t e = 1; e <= 6; ++e) {
    fill_pattern(c->data(), c->size(), e);
    s.alloc->checkpoint_chunk(*c, e);
  }
  // Depth 4 guarantees the last 4 epochs stay addressable; between
  // commits the ring's depth+1 slots can hold one more (epoch 2 here --
  // it becomes the reuse victim of the *next* commit). Epoch 1 was
  // reclaimed on slot reuse.
  const auto epochs = s.alloc->retained_epochs(*c);
  ASSERT_EQ(epochs.size(), 5u);
  EXPECT_EQ(epochs[0], 6u);
  EXPECT_EQ(epochs[4], 2u);
  // Every retained epoch restores byte-exact; the newest is a plain kOk,
  // older ones are explicitly stale.
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 6), RestoreStatus::kOk);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 6));
  for (std::uint64_t e = 2; e <= 5; ++e) {
    EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, e), RestoreStatus::kOkStale);
    EXPECT_TRUE(check_pattern(c->data(), c->size(), e));
  }
  // A reclaimed epoch is gone, detectably.
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 1), RestoreStatus::kNoData);
  // The record still answers for the newest version (legacy consumers).
  EXPECT_EQ(s.alloc->restore_chunk(*c), RestoreStatus::kOk);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 6));
}

TEST(VersionRing, DepthOneKeepsLegacyTwoSlotLayout) {
  Stack s(/*ring_depth=*/1);
  // No directory at depth 1: the legacy path runs with zero ring overhead.
  EXPECT_EQ(s.alloc->epoch_directory(), nullptr);
  EXPECT_EQ(s.alloc->ring_depth(), 1u);
  alloc::Chunk* c = s.alloc->nvalloc("legacy", 64 * KiB, true);
  fill_pattern(c->data(), c->size(), 1);
  s.alloc->checkpoint_chunk(*c, 1);
  const std::uint32_t slot1 = c->record().committed;
  fill_pattern(c->data(), c->size(), 2);
  s.alloc->checkpoint_chunk(*c, 2);
  EXPECT_NE(c->record().committed, slot1);  // two-slot alternation
  EXPECT_EQ(s.alloc->retained_epochs(*c).size(), 1u);
  // Epoch-addressed restore still answers for the newest version...
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 2), RestoreStatus::kOk);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 2));
  // ...and correctly has nothing older.
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 1), RestoreStatus::kNoData);
}

TEST(VersionRing, CommitSequenceMatchesLegacyByteForByte) {
  // Depth-1 equivalence: an identical workload against a ring-depth-1
  // allocator and a default (legacy) allocator must produce identical
  // device images -- the ring code must be completely inert at depth 1.
  NvmConfig cfg;
  cfg.capacity = 8 * MiB;
  cfg.throttle = false;
  NvmDevice dev_a(cfg), dev_b(cfg);
  vmem::Container cont_a(dev_a), cont_b(dev_b);
  alloc::ChunkAllocator::Options depth1;
  depth1.ring_depth = 1;
  alloc::ChunkAllocator alloc_a(cont_a, depth1);
  alloc::ChunkAllocator alloc_b(cont_b);  // default options
  alloc::Chunk* a = alloc_a.nvalloc("eq", 32 * KiB, true);
  alloc::Chunk* b = alloc_b.nvalloc("eq", 32 * KiB, true);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    fill_pattern(a->data(), a->size(), e);
    fill_pattern(b->data(), b->size(), e);
    alloc_a.checkpoint_chunk(*a, e);
    alloc_b.checkpoint_chunk(*b, e);
  }
  EXPECT_EQ(std::memcmp(dev_a.data(), dev_b.data(), cfg.capacity), 0)
      << "ring_depth=1 must reproduce the two-slot device image exactly";
}

TEST(EpochDirectory, AttachResetsInProgressSlots) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() /
                        ("nvmcp_epoch_attach_" +
                         std::to_string(::getpid()) + ".nvm");
  fs::remove(path);
  NvmConfig cfg;
  cfg.capacity = 16 * MiB;
  cfg.throttle = false;
  cfg.backing_file = path.string();
  const std::uint64_t id = alloc::genid("crashy");
  {
    NvmDevice dev(cfg);
    vmem::Container cont(dev);
    alloc::ChunkAllocator::Options opts;
    opts.ring_depth = 3;
    alloc::ChunkAllocator allocator(cont, opts);
    alloc::Chunk* c = allocator.nvalloc(id, 64 * KiB, true);
    fill_pattern(c->data(), c->size(), 1);
    allocator.checkpoint_chunk(*c, 1);
    // Start a second commit but "crash" before it publishes: the acquire
    // persisted a kInProgress slot.
    fill_pattern(c->data(), c->size(), 2);
    allocator.precopy_chunk(*c, 2);
    auto* ring = allocator.epoch_directory()->ring(id);
    ASSERT_NE(ring, nullptr);
    bool in_progress = false;
    for (const RingSlot& slot : ring->snapshot_slots()) {
      if (slot.state == RingSlot::kInProgress) in_progress = true;
    }
    EXPECT_TRUE(in_progress);
  }
  {
    // Restart: the torn in-progress slot must never be trusted -- the
    // directory resets it to kFree on attach, and epoch 1 still restores.
    NvmDevice dev(cfg);
    ASSERT_TRUE(dev.reopened());
    vmem::Container cont(dev);
    ASSERT_TRUE(cont.attached_existing());
    alloc::ChunkAllocator::Options opts;
    opts.ring_depth = 3;
    alloc::ChunkAllocator allocator(cont, opts);
    alloc::Chunk* c = allocator.nvalloc(id, 64 * KiB, true);
    EXPECT_EQ(c->restore_status(), RestoreStatus::kOk);
    EXPECT_TRUE(check_pattern(c->data(), c->size(), 1));
    auto* ring = allocator.epoch_directory()->ring(id);
    ASSERT_NE(ring, nullptr);
    for (const RingSlot& slot : ring->snapshot_slots()) {
      EXPECT_NE(slot.state, RingSlot::kInProgress);
    }
    EXPECT_EQ(ring->newest_epoch(), 1u);
  }
  fs::remove(path);
}

TEST(EpochDirectory, DepthChangeAdoptsLegacyCommittedSlot) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() /
                        ("nvmcp_epoch_adopt_" +
                         std::to_string(::getpid()) + ".nvm");
  fs::remove(path);
  NvmConfig cfg;
  cfg.capacity = 16 * MiB;
  cfg.throttle = false;
  cfg.backing_file = path.string();
  const std::uint64_t id = alloc::genid("migrator");
  {
    // Session 1 runs the paper's two-slot scheme.
    NvmDevice dev(cfg);
    vmem::Container cont(dev);
    alloc::ChunkAllocator allocator(cont);
    alloc::Chunk* c = allocator.nvalloc(id, 64 * KiB, true);
    fill_pattern(c->data(), c->size(), 7);
    allocator.checkpoint_chunk(*c, 3);
  }
  {
    // Session 2 upgrades to a depth-4 ring: the legacy committed slot is
    // adopted as the ring's newest retained epoch (no copy, no leak) and
    // subsequent commits stack new epochs on top of it.
    NvmDevice dev(cfg);
    vmem::Container cont(dev);
    alloc::ChunkAllocator::Options opts;
    opts.ring_depth = 4;
    alloc::ChunkAllocator allocator(cont, opts);
    alloc::Chunk* c = allocator.nvalloc(id, 64 * KiB, true);
    EXPECT_EQ(c->restore_status(), RestoreStatus::kOk);
    EXPECT_TRUE(check_pattern(c->data(), c->size(), 7));
    fill_pattern(c->data(), c->size(), 8);
    allocator.checkpoint_chunk(*c, 4);
    const auto epochs = allocator.retained_epochs(*c);
    ASSERT_EQ(epochs.size(), 2u);
    EXPECT_EQ(epochs[0], 4u);
    EXPECT_EQ(epochs[1], 3u);
    EXPECT_EQ(allocator.restore_chunk_epoch(*c, 3), RestoreStatus::kOkStale);
    EXPECT_TRUE(check_pattern(c->data(), c->size(), 7));
  }
  fs::remove(path);
}

TEST(EpochGc, ReclaimsOldestFirstDownToTheFloorNeverTheNewest) {
  Stack s(/*ring_depth=*/8, 4 * MiB);
  alloc::Chunk* c = s.alloc->nvalloc("hoarder", 256 * KiB, true);
  for (std::uint64_t e = 1; e <= 8; ++e) {
    fill_pattern(c->data(), c->size(), e);
    s.alloc->checkpoint_chunk(*c, e);
  }
  auto* dir = s.alloc->epoch_directory();
  ASSERT_NE(dir, nullptr);
  ASSERT_EQ(s.alloc->retained_epochs(*c).size(), 8u);
  const double occ_before = dir->occupancy();

  // Below the watermark the pass is a no-op.
  GcPassStats idle = dir->gc_pass(/*watermark=*/1.0, /*floor=*/2);
  EXPECT_FALSE(idle.saturated);
  EXPECT_EQ(idle.slots_reclaimed, 0u);
  EXPECT_EQ(s.alloc->retained_epochs(*c).size(), 8u);

  // Saturated: reclaim oldest-first, stop at the floor even though the
  // watermark is still exceeded.
  GcPassStats st = dir->gc_pass(/*watermark=*/0.01, /*floor=*/2);
  EXPECT_TRUE(st.saturated);
  EXPECT_EQ(st.slots_reclaimed, 6u);
  EXPECT_GT(st.bytes_reclaimed, 0u);
  EXPECT_LT(st.occupancy_after, st.occupancy_before);
  EXPECT_LT(dir->occupancy(), occ_before);
  const auto epochs = s.alloc->retained_epochs(*c);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 8u);  // the newest epoch is never reclaimed
  EXPECT_EQ(epochs[1], 7u);
  // The survivors still restore byte-exact.
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 7), RestoreStatus::kOkStale);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 7));
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 5), RestoreStatus::kNoData);
}

TEST(EpochGc, PinnedEpochsSurviveSaturation) {
  Stack s(/*ring_depth=*/6, 4 * MiB);
  alloc::Chunk* c = s.alloc->nvalloc("pinned", 256 * KiB, true);
  for (std::uint64_t e = 1; e <= 6; ++e) {
    fill_pattern(c->data(), c->size(), e);
    s.alloc->checkpoint_chunk(*c, e);
  }
  auto* dir = s.alloc->epoch_directory();
  // Pin epoch 2 (as a streaming restore would), then saturate hard with a
  // floor of 1: everything unpinned except the newest goes.
  s.alloc->pin_epoch(*c, 2);
  dir->gc_pass(/*watermark=*/0.01, /*floor=*/1);
  auto epochs = s.alloc->retained_epochs(*c);
  EXPECT_NE(std::find(epochs.begin(), epochs.end(), 2u), epochs.end())
      << "the GC reclaimed a pinned restore source";
  EXPECT_EQ(epochs[0], 6u);
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 2), RestoreStatus::kOkStale);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 2));
  // Unpinned, the next saturated pass may take it.
  s.alloc->unpin_epoch(*c, 2);
  dir->gc_pass(/*watermark=*/0.01, /*floor=*/1);
  epochs = s.alloc->retained_epochs(*c);
  EXPECT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0], 6u);
}

TEST(EpochGc, WatermarkRespectsOtherChunksSharingTheDevice) {
  // Two chunks on one device: the pass reclaims globally-oldest slots
  // across chunks, and every chunk keeps its floor.
  Stack s(/*ring_depth=*/4, 4 * MiB);
  alloc::Chunk* a = s.alloc->nvalloc("a", 128 * KiB, true);
  alloc::Chunk* b = s.alloc->nvalloc("b", 128 * KiB, true);
  for (std::uint64_t e = 1; e <= 4; ++e) {
    fill_pattern(a->data(), a->size(), 10 + e);
    fill_pattern(b->data(), b->size(), 20 + e);
    s.alloc->checkpoint_chunk(*a, e);
    s.alloc->checkpoint_chunk(*b, e);
  }
  auto* dir = s.alloc->epoch_directory();
  dir->gc_pass(/*watermark=*/0.01, /*floor=*/2);
  EXPECT_EQ(s.alloc->retained_epochs(*a).size(), 2u);
  EXPECT_EQ(s.alloc->retained_epochs(*b).size(), 2u);
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*a, 3), RestoreStatus::kOkStale);
  EXPECT_TRUE(check_pattern(a->data(), a->size(), 13));
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*b, 3), RestoreStatus::kOkStale);
  EXPECT_TRUE(check_pattern(b->data(), b->size(), 23));
}

TEST(VersionRing, CorruptedNewestSlotIsDetectedNotLaundered) {
  // The PR-6 laundering gap, closed: corrupt a committed slot in place,
  // then run an incremental-style commit cycle and a restore. The
  // corruption must surface as a detected failure or a rollback -- never
  // as a silently-wrong success.
  Stack s(/*ring_depth=*/3);
  alloc::Chunk* c = s.alloc->nvalloc("flip", 64 * KiB, true);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    fill_pattern(c->data(), c->size(), e);
    s.alloc->checkpoint_chunk(*c, e);
  }
  // Flip a byte in the newest committed slot's payload on the device.
  const vmem::ChunkRecord& rec = c->record();
  s.dev->data()[rec.slot_off[rec.committed] + 100] ^= std::byte{0xFF};
  // The newest epoch now fails verification...
  fill_pattern(c->data(), c->size(), 99);
  EXPECT_EQ(s.alloc->restore_chunk(*c), RestoreStatus::kChecksumMismatch);
  // ...but older retained epochs still recover the chunk byte-exact.
  EXPECT_EQ(s.alloc->restore_chunk_epoch(*c, 2), RestoreStatus::kOkStale);
  EXPECT_TRUE(check_pattern(c->data(), c->size(), 2));
}

TEST(VersionRing, RingSlotCountIsBounded) {
  // A long commit history cycles slots instead of growing: allocated
  // payload regions never exceed depth + 1.
  Stack s(/*ring_depth=*/3);
  alloc::Chunk* c = s.alloc->nvalloc("cycler", 32 * KiB, true);
  for (std::uint64_t e = 1; e <= 20; ++e) {
    fill_pattern(c->data(), c->size(), e);
    s.alloc->checkpoint_chunk(*c, e);
    auto* ring = s.alloc->epoch_directory()->ring(c->id());
    ASSERT_NE(ring, nullptr);
    EXPECT_LE(ring->allocated_slots(), 4u) << "epoch " << e;
  }
  const auto epochs = s.alloc->retained_epochs(*c);
  ASSERT_EQ(epochs.size(), 4u);  // depth + the next reuse victim
  EXPECT_EQ(epochs[0], 20u);
  EXPECT_EQ(epochs[3], 17u);
}

}  // namespace
}  // namespace nvmcp::epoch
