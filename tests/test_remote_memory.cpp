// RemoteStore / RemoteMemory: ARMCI-style put/get, two-version remote
// commits, stale-epoch protection, and checksum-verified fetches.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "net/remote_memory.hpp"

namespace nvmcp::net {
namespace {

class RemoteMemoryTest : public ::testing::Test {
 protected:
  RemoteMemoryTest() : link_(1.0e9, 0.05) {
    NvmConfig cfg;
    cfg.capacity = 32 * MiB;
    cfg.throttle = false;
    store_ = std::make_unique<RemoteStore>(cfg);
    rm_ = std::make_unique<RemoteMemory>(link_, *store_);
  }

  std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    Rng rng(seed);
    for (auto& b : v) b = static_cast<std::byte>(rng.next_u64());
    return v;
  }

  Interconnect link_;
  std::unique_ptr<RemoteStore> store_;
  std::unique_ptr<RemoteMemory> rm_;
};

TEST_F(RemoteMemoryTest, PutCommitGetRoundTrip) {
  const auto data = pattern(200 * KiB, 1);
  rm_->put(/*rank=*/0, /*chunk=*/77, data.data(), data.size(), /*epoch=*/5,
           /*commit=*/true);
  EXPECT_EQ(store_->committed_epoch(0, 77), 5u);
  std::vector<std::byte> out(data.size());
  EXPECT_TRUE(rm_->get(0, 77, out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST_F(RemoteMemoryTest, UncommittedPutNotVisibleToGet) {
  const auto data = pattern(64 * KiB, 2);
  rm_->put(0, 1, data.data(), data.size(), 1, /*commit=*/false);
  std::vector<std::byte> out(data.size());
  EXPECT_FALSE(rm_->get(0, 1, out.data(), out.size()));
  rm_->commit(0, 1, 1);
  EXPECT_TRUE(rm_->get(0, 1, out.data(), out.size()));
}

TEST_F(RemoteMemoryTest, CommitWrongEpochIsIgnored) {
  const auto data = pattern(16 * KiB, 3);
  rm_->put(0, 2, data.data(), data.size(), 4, false);
  rm_->commit(0, 2, 9);  // stale/wrong epoch
  EXPECT_EQ(store_->committed_epoch(0, 2), 0u);
}

TEST_F(RemoteMemoryTest, TwoVersionsProtectPreviousCommit) {
  const auto v1 = pattern(64 * KiB, 10);
  const auto v2 = pattern(64 * KiB, 20);
  rm_->put(0, 3, v1.data(), v1.size(), 1, true);
  // A second put lands in the other slot; until committed, v1 survives.
  rm_->put(0, 3, v2.data(), v2.size(), 2, false);
  std::vector<std::byte> out(v1.size());
  EXPECT_TRUE(rm_->get(0, 3, out.data(), out.size()));
  EXPECT_EQ(out, v1);
  rm_->commit(0, 3, 2);
  EXPECT_TRUE(rm_->get(0, 3, out.data(), out.size()));
  EXPECT_EQ(out, v2);
}

TEST_F(RemoteMemoryTest, RanksAreIsolated) {
  const auto a = pattern(32 * KiB, 30);
  const auto b = pattern(32 * KiB, 40);
  rm_->put(0, 9, a.data(), a.size(), 1, true);
  rm_->put(1, 9, b.data(), b.size(), 1, true);
  std::vector<std::byte> out(a.size());
  EXPECT_TRUE(rm_->get(0, 9, out.data(), out.size()));
  EXPECT_EQ(out, a);
  EXPECT_TRUE(rm_->get(1, 9, out.data(), out.size()));
  EXPECT_EQ(out, b);
  EXPECT_EQ(store_->stored_chunks(), 2u);
}

TEST_F(RemoteMemoryTest, GetUnknownPairFails) {
  std::vector<std::byte> out(1024);
  EXPECT_FALSE(rm_->get(5, 555, out.data(), out.size()));
}

TEST_F(RemoteMemoryTest, SizeMismatchFails) {
  const auto data = pattern(32 * KiB, 50);
  rm_->put(0, 4, data.data(), data.size(), 1, true);
  std::vector<std::byte> out(16 * KiB);
  EXPECT_FALSE(rm_->get(0, 4, out.data(), out.size()));
}

TEST_F(RemoteMemoryTest, SizeChangeReplacesSlots) {
  const auto small = pattern(16 * KiB, 60);
  const auto big = pattern(64 * KiB, 70);
  rm_->put(0, 5, small.data(), small.size(), 1, true);
  rm_->put(0, 5, big.data(), big.size(), 2, true);
  std::vector<std::byte> out(big.size());
  EXPECT_TRUE(rm_->get(0, 5, out.data(), out.size()));
  EXPECT_EQ(out, big);
}

TEST_F(RemoteMemoryTest, CorruptRemoteDetectedByChecksum) {
  const auto data = pattern(32 * KiB, 80);
  rm_->put(0, 6, data.data(), data.size(), 1, true);
  // Flip a byte inside the remote committed slot.
  auto& dev = store_->device();
  bool flipped = false;
  for (std::size_t p = 0; p < dev.capacity() && !flipped; p += 64) {
    if (std::memcmp(dev.data() + p, data.data(), 64) == 0) {
      dev.data()[p] ^= std::byte{0xFF};
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  std::vector<std::byte> out(data.size());
  EXPECT_FALSE(rm_->get(0, 6, out.data(), out.size()));
}

TEST_F(RemoteMemoryTest, TransfersAccountedAsCheckpointTraffic) {
  const auto data = pattern(128 * KiB, 90);
  rm_->put(0, 7, data.data(), data.size(), 1, true);
  EXPECT_GE(link_.stats().checkpoint_bytes, data.size());
  EXPECT_EQ(link_.stats().app_bytes, 0u);
}

TEST_F(RemoteMemoryTest, AppCommunicateUsesAppClass) {
  rm_->app_communicate(64 * KiB);
  EXPECT_EQ(link_.stats().app_bytes, 64 * KiB);
}

}  // namespace
}  // namespace nvmcp::net
