// Fault subsystem: plan generation/round-trip, injector determinism, and
// chaos campaigns (seeded replay, outcome taxonomy, parity rebuilds, the
// 200-trial mixed acceptance sweep with the Section III cross-check).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/remote.hpp"
#include "core/restart.hpp"
#include "epoch/directory.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"

namespace nvmcp::fault {
namespace {

FaultPlan::GenSpec busy_spec() {
  FaultPlan::GenSpec gs;
  gs.horizon = 60.0;
  gs.mtbf_soft = 80.0;
  gs.mtbf_hard = 200.0;
  gs.torn_write_rate = 0.05;
  gs.bit_flip_rate = 0.05;
  gs.outage_rate = 0.03;
  gs.degrade_rate = 0.03;
  gs.helper_stall_rate = 0.03;
  gs.helper_kill_rate = 0.01;
  gs.ranks = 2;
  return gs;
}

TEST(FaultPlan, GenerateIsDeterministic) {
  const FaultPlan::GenSpec gs = busy_spec();
  const FaultPlan a = FaultPlan::generate(gs, 42);
  const FaultPlan b = FaultPlan::generate(gs, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].type, b.events()[i].type);
    EXPECT_DOUBLE_EQ(a.events()[i].at_seconds, b.events()[i].at_seconds);
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
  }
  const FaultPlan c = FaultPlan::generate(gs, 43);
  EXPECT_TRUE(a.size() != c.size() ||
              a.events()[0].at_seconds != c.events()[0].at_seconds);
}

TEST(FaultPlan, CrashTruncatesLaterEvents) {
  FaultPlan plan;
  plan.add({FaultType::kBitFlip, 5.0, 0, 0, 1.0});
  plan.add({FaultType::kLinkOutage, 20.0, 0, 5.0, 1.0});
  plan.add({FaultType::kSoftCrash, 10.0, 0, 0, 1.0});
  ASSERT_EQ(plan.size(), 2u);  // the outage at t=20 died with the node
  ASSERT_NE(plan.crash(), nullptr);
  EXPECT_DOUBLE_EQ(plan.crash()->at_seconds, 10.0);
  // Nothing can be scheduled past the crash either.
  plan.add({FaultType::kBitFlip, 12.0, 0, 0, 1.0});
  EXPECT_EQ(plan.size(), 2u);
}

TEST(FaultPlan, JsonRoundTripIsLossless) {
  const FaultPlan plan = FaultPlan::generate(busy_spec(), 7);
  const std::string text = plan.to_json().dump(2);
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(text, &parsed, &err)) << err;
  FaultPlan back;
  ASSERT_TRUE(FaultPlan::from_json(parsed, &back, &err)) << err;
  EXPECT_EQ(back.seed(), plan.seed());
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.events()[i].type, plan.events()[i].type);
    EXPECT_DOUBLE_EQ(back.events()[i].at_seconds,
                     plan.events()[i].at_seconds);
    EXPECT_EQ(back.events()[i].rank, plan.events()[i].rank);
    EXPECT_DOUBLE_EQ(back.events()[i].duration, plan.events()[i].duration);
    EXPECT_DOUBLE_EQ(back.events()[i].factor, plan.events()[i].factor);
  }
}

TEST(FaultPlan, GeneratorCoversEveryFaultType) {
  FaultPlan::GenSpec gs = busy_spec();
  gs.mtbf_soft = 40.0;
  gs.mtbf_hard = 40.0;
  std::set<FaultType> seen;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = FaultPlan::generate(gs, seed);
    for (const FaultEvent& e : plan.events()) {
      seen.insert(e.type);
    }
  }
  EXPECT_EQ(seen.size(), 8u) << "some fault type never generated";
}

TEST(FaultInjector, DisarmedHooksDoNothing) {
  FaultInjector inj;
  inj.set_torn_write_rate(1.0);
  std::byte buf[64] = {};
  EXPECT_FALSE(inj.armed());
  // Hook sites guard on armed(); calling the hook directly still works but
  // the components never reach it when disarmed. Verify knob behaviour.
  inj.arm(1);
  EXPECT_TRUE(inj.armed());
  EXPECT_GT(inj.maybe_tear_write(buf, sizeof buf), 0u);
  EXPECT_EQ(inj.stats().writes_torn, 1u);
  inj.disarm();
  EXPECT_FALSE(inj.armed());
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultInjector a, b;
  a.arm(99);
  b.arm(99);
  a.set_remote_drop_rate(0.5);
  b.set_remote_drop_rate(0.5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.should_drop_remote_op(), b.should_drop_remote_op());
    EXPECT_EQ(a.pick(1000), b.pick(1000));
  }
}

CampaignSpec small_spec() {
  CampaignSpec s;
  s.trials = 16;
  s.seed = 0xbead;
  // Serial copier, explicitly: replay-determinism assertions rely on a
  // stable injector RNG draw order, which parallel copying (e.g. via an
  // NVMCP_COPY_THREADS override in the environment) does not guarantee.
  s.copy_threads = 1;
  s.ranks = 2;
  s.chunks_per_rank = 2;
  s.chunk_bytes = 16 * KiB;
  s.iterations = 8;
  s.iters_per_checkpoint = 2;
  s.iteration_seconds = 5.0;
  s.faults.mtbf_soft = 45.0;
  s.faults.mtbf_hard = 150.0;
  s.faults.bit_flip_rate = 0.02;
  s.faults.torn_write_rate = 0.02;
  s.faults.outage_rate = 0.02;
  s.faults.helper_stall_rate = 0.02;
  return s;
}

TEST(CampaignRunner, TrialSeedsAreStableAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 256; ++i) {
    seeds.insert(CampaignRunner::trial_seed(0x1234, i));
  }
  EXPECT_EQ(seeds.size(), 256u);
  EXPECT_EQ(CampaignRunner::trial_seed(0x1234, 17),
            CampaignRunner::trial_seed(0x1234, 17));
  EXPECT_NE(CampaignRunner::trial_seed(0x1234, 17),
            CampaignRunner::trial_seed(0x1235, 17));
}

TEST(CampaignRunner, SameSeedSameOutcome) {
  CampaignRunner runner(small_spec());
  // Scan a few seeds so at least one crashing trial is replayed.
  for (std::uint64_t s = 1; s <= 6; ++s) {
    const std::uint64_t seed = CampaignRunner::trial_seed(0xfeed, static_cast<int>(s));
    const TrialResult a = runner.run_trial(seed);
    const TrialResult b = runner.run_trial(seed);
    EXPECT_EQ(a.outcome, b.outcome) << "seed " << seed;
    EXPECT_EQ(a.faults_fired, b.faults_fired);
    EXPECT_DOUBLE_EQ(a.crash_seconds, b.crash_seconds);
    EXPECT_EQ(a.victim_rank, b.victim_rank);
    EXPECT_EQ(a.committed_epoch, b.committed_epoch);
    EXPECT_EQ(a.restored_epoch, b.restored_epoch);
    EXPECT_EQ(a.bytes_local, b.bytes_local);
    EXPECT_EQ(a.bytes_remote, b.bytes_remote);
    EXPECT_EQ(a.bytes_parity, b.bytes_parity);
    EXPECT_EQ(a.plan.size(), b.plan.size());
  }
}

TEST(CampaignRunner, SweepTrialsReplayFromTheirSeeds) {
  CampaignRunner runner(small_spec());
  const CampaignResult res = runner.run();
  ASSERT_EQ(res.trials.size(), 16u);
  for (const TrialResult& t : res.trials) {
    const TrialResult replay = runner.run_trial(t.seed);
    EXPECT_EQ(replay.outcome, t.outcome) << "trial " << t.index;
    EXPECT_EQ(replay.restored_epoch, t.restored_epoch);
    EXPECT_DOUBLE_EQ(replay.crash_seconds, t.crash_seconds);
    EXPECT_EQ(replay.faults_fired, t.faults_fired);
  }
}

TEST(CampaignRunner, SoftCrashesRecoverFromLocalNvm) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.faults = {};  // crashes only, no environmental noise
  s.faults.mtbf_soft = 30.0;
  s.faults.mtbf_hard = 0;  // never
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0);
  // With clean local NVM every post-checkpoint soft crash restores
  // locally; only pre-first-checkpoint crashes report known loss.
  EXPECT_GT(res.count(TrialOutcome::kRecoveredLocal), 0);
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredRemote), 0);
  EXPECT_EQ(res.count(TrialOutcome::kStaleEpoch), 0);
}

TEST(CampaignRunner, HardCrashesNeedTheBuddyStore) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.faults = {};
  s.faults.mtbf_soft = 0;
  s.faults.mtbf_hard = 30.0;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0);
  EXPECT_GT(res.count(TrialOutcome::kRecoveredRemote), 0);
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredLocal), 0);
}

TEST(CampaignRunner, ParityGroupRebuildsHardCrashes) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.ranks = 3;
  s.use_parity = true;
  s.parity_shards = 1;
  s.faults = {};
  s.faults.mtbf_soft = 0;
  s.faults.mtbf_hard = 30.0;
  s.faults.ranks = 3;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0);
  EXPECT_GT(res.count(TrialOutcome::kParityRebuild), 0);
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredRemote), 0);
}

TEST(CampaignRunner, HelperKillLeavesRemoteStale) {
  CampaignSpec s = small_spec();
  s.trials = 32;
  s.faults = {};
  s.faults.mtbf_soft = 0;
  s.faults.mtbf_hard = 35.0;
  s.faults.helper_kill_rate = 0.2;  // helper usually dies before the crash
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0);
  // A killed helper stops replication: hard crashes then land on an older
  // remote epoch (stale) or, if nothing was ever shipped, on known loss.
  EXPECT_GT(res.count(TrialOutcome::kStaleEpoch) +
                res.count(TrialOutcome::kDetectedCorruption),
            0);
}

// Tentpole invariant: outage/stall trials end either fully recovered or
// *explicitly* degraded -- never with an undetected stale remote cut.
// run_trial cross-checks every coordination round's degraded/stale report
// against the buddy store's committed epochs and classifies any mismatch
// as kUndetectedLoss; this campaign makes outages long enough to swallow
// whole coordination rounds and asserts the reports stay truthful.
TEST(CampaignRunner, OutageTrialsReportDegradedNeverSilentlyStale) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.seed = 0xd16e57;
  s.faults = {};
  s.faults.mtbf_soft = 0;  // no crashes: pure transport chaos
  s.faults.mtbf_hard = 0;
  s.faults.outage_rate = 0.08;      // ~3 outages per 40 s horizon
  s.faults.outage_duration = 12.0;  // spans entire coordination rounds
  s.faults.helper_stall_rate = 0.04;
  s.faults.helper_stall_duration = 8.0;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  ASSERT_EQ(res.trials.size(), 24u);
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0)
      << "a coordination round under-reported remote staleness";
  int degraded_trials = 0;
  for (const TrialResult& t : res.trials) {
    EXPECT_TRUE(t.remote_cut_verified) << "trial " << t.index;
    if (t.remote_degraded) ++degraded_trials;
  }
  EXPECT_GT(degraded_trials, 0)
      << "no outage covered a coordination round; the campaign is vacuous";

  // Degraded-round accounting replays exactly from the trial seed.
  for (const TrialResult& t : res.trials) {
    const TrialResult replay = runner.run_trial(t.seed);
    EXPECT_EQ(replay.outcome, t.outcome) << "trial " << t.index;
    EXPECT_EQ(replay.remote_degraded, t.remote_degraded);
    EXPECT_EQ(replay.degraded_coordinations, t.degraded_coordinations);
    EXPECT_EQ(replay.remote_stale_chunks, t.remote_stale_chunks);
  }
}

// The sharded (copy_threads=4) data path under chaos: the per-trial
// managers commit/restore in parallel while torn writes, bit flips and
// crashes fire. Fault *points* are interleaving-dependent here, so no
// replay assertions — but the library invariant is absolute: recovery may
// report loss, it must never silently return wrong bytes.
TEST(CampaignRunner, ParallelCopyPathHasNoUndetectedLoss) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.seed = 0x9a8a11e1;
  s.copy_threads = 4;
  s.chunks_per_rank = 5;  // > copy_threads shards per commit
  s.faults.mtbf_soft = 30.0;
  s.faults.mtbf_hard = 120.0;
  s.faults.torn_write_rate = 0.05;
  s.faults.bit_flip_rate = 0.05;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  ASSERT_EQ(res.trials.size(), 24u);
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0)
      << "parallel commit leaked a torn/stale slot past verification";
  int crashed = 0;
  for (const TrialResult& t : res.trials) {
    if (t.crash_seconds >= 0) ++crashed;
  }
  EXPECT_GT(crashed, 0) << "campaign produced no crashes; test is vacuous";
  EXPECT_GT(res.count(TrialOutcome::kRecoveredLocal) +
                res.count(TrialOutcome::kRecoveredRemote) +
                res.count(TrialOutcome::kStaleEpoch) +
                res.count(TrialOutcome::kDetectedCorruption),
            0);
}

// Write-log tracking under chaos: the compute phase switches to bursts of
// small logged stores (store-then-log), so every commit is reconstructed
// from sub-page dirty ranges instead of whole-chunk copies. A range the
// log dropped or the copier mis-applied leaves restored bytes matching no
// golden epoch -- classified kUndetectedLoss, always a library bug.
//
// Bit flips are BACK in the mix (they were excluded before the version
// ring existed): at ring depth >= 3 an incremental commit verifies the
// reused slot's bytes against its published checksum before folding any
// clean-gap bytes, so in-place NVM corruption between commits is detected
// and recopied wholesale instead of being laundered into the next
// checksum; a flipped *newest* slot fails restore verification and rolls
// back to an older retained epoch. Either way: detected, never silent.
TEST(CampaignRunner, WriteLogTrackingHasNoUndetectedLoss) {
  CampaignSpec s = small_spec();
  s.trials = 32;
  s.seed = 0x10663bad;
  s.track_mode = vmem::TrackMode::kWriteLog;
  s.ring_depth = 3;
  s.chunks_per_rank = 3;
  s.iterations = 10;
  s.faults = {};
  s.faults.mtbf_soft = 30.0;
  s.faults.mtbf_hard = 120.0;
  s.faults.torn_write_rate = 0.05;
  s.faults.bit_flip_rate = 0.05;
  s.faults.outage_rate = 0.02;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  ASSERT_EQ(res.trials.size(), 32u);
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0)
      << "a logged dirty range was dropped or mis-applied at commit";
  int crashed = 0;
  for (const TrialResult& t : res.trials) {
    if (t.crash_seconds >= 0) ++crashed;
  }
  EXPECT_GT(crashed, 0) << "campaign produced no crashes; test is vacuous";
  EXPECT_GT(res.count(TrialOutcome::kRecoveredLocal) +
                res.count(TrialOutcome::kRecoveredRemote) +
                res.count(TrialOutcome::kStaleEpoch) +
                res.count(TrialOutcome::kDetectedCorruption),
            0);
  // Crash-free write-log trials replay exactly like any other mode.
  for (const TrialResult& t : res.trials) {
    const TrialResult replay = runner.run_trial(t.seed);
    EXPECT_EQ(replay.outcome, t.outcome) << "trial " << t.index;
    EXPECT_EQ(replay.restored_epoch, t.restored_epoch);
  }
}

// Directed version-ring scenario: depth-4 ring, NO remote protection, and
// every soft crash also corrupts the two newest retained epochs in place.
// A correct recovery must therefore surface at epoch k-2 -- byte-verified
// against the golden snapshot of that epoch -- via the restart
// coordinator's ring-rollback walk. Loss of progress is expected and
// detectable (kStaleEpoch); silent wrong bytes never are.
TEST(CampaignRunner, RingRollsBackToEpochKMinus2) {
  CampaignSpec s = small_spec();
  s.trials = 24;
  s.seed = 0x41965;
  s.ring_depth = 4;
  s.local_only = true;
  s.corrupt_newest_epochs = 2;
  s.iterations = 10;
  s.faults = {};  // soft crashes only; no environmental noise
  s.faults.mtbf_soft = 25.0;
  s.faults.mtbf_hard = 0;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  ASSERT_EQ(res.trials.size(), 24u);
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0)
      << "ring rollback surfaced bytes matching no committed epoch";
  // Local-only + newest-two-corrupt: nothing can come back at the latest
  // epoch, and no buddy store exists to fetch it from.
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredLocal), 0);
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredRemote), 0);
  int rolled_to_k2 = 0;
  for (const TrialResult& t : res.trials) {
    if (t.crash_seconds < 0) continue;
    if (t.chunks_rolled_back > 0 && t.restored_epoch >= 0) {
      EXPECT_EQ(t.outcome, TrialOutcome::kStaleEpoch) << "trial " << t.index;
      EXPECT_EQ(t.restored_epoch,
                static_cast<std::int64_t>(t.committed_epoch) - 2)
          << "trial " << t.index;
      ++rolled_to_k2;
    }
  }
  EXPECT_GT(rolled_to_k2, 0)
      << "no trial exercised the rollback walk; the campaign is vacuous";
  // Directed corruption is deterministic: trials replay exactly.
  for (const TrialResult& t : res.trials) {
    const TrialResult replay = runner.run_trial(t.seed);
    EXPECT_EQ(replay.outcome, t.outcome) << "trial " << t.index;
    EXPECT_EQ(replay.restored_epoch, t.restored_epoch);
    EXPECT_EQ(replay.chunks_rolled_back, t.chunks_rolled_back);
    EXPECT_EQ(replay.rollback_epoch, t.rollback_epoch);
  }
}

// Depth-1 control for the same directed scenario: no ring, no remote --
// corrupting the newest epoch must be *detected* loss, never a silent
// success and never a magic rollback (there is nothing to roll back to).
TEST(CampaignRunner, DepthOneHasNothingToRollBackTo) {
  CampaignSpec s = small_spec();
  s.trials = 12;
  s.seed = 0x41966;
  s.ring_depth = 1;
  s.local_only = true;
  s.corrupt_newest_epochs = 1;
  s.iterations = 10;
  s.faults = {};
  s.faults.mtbf_soft = 25.0;
  s.faults.mtbf_hard = 0;
  CampaignRunner runner(s);
  const CampaignResult res = runner.run();
  EXPECT_EQ(res.count(TrialOutcome::kUndetectedLoss), 0);
  EXPECT_EQ(res.count(TrialOutcome::kRecoveredLocal), 0);
  EXPECT_EQ(res.count(TrialOutcome::kStaleEpoch), 0)
      << "depth-1 rollback is impossible; a stale success means the "
         "two-slot scheme leaked an uncommitted version";
  int detected = 0;
  for (const TrialResult& t : res.trials) {
    if (t.crash_seconds < 0) continue;
    EXPECT_EQ(t.chunks_rolled_back, 0) << "trial " << t.index;
    if (t.outcome == TrialOutcome::kDetectedCorruption) ++detected;
  }
  EXPECT_GT(detected, 0) << "no crash landed after a commit; vacuous";
}

// --- directed codec chaos --------------------------------------------
// The campaign hits encoded remote payloads statistically; these two
// scenarios pin the specific laundering hazards the frame format exists
// to close: a flipped bit inside an encoded frame, and a delta whose
// local base epoch is gone.

struct CodecChaosRig {
  explicit CodecChaosRig(core::CodecMode mode, int ring_depth)
      : link(2.0e9, 0.1) {
    NvmConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.throttle = false;
    dev = std::make_unique<NvmDevice>(cfg);
    container = std::make_unique<vmem::Container>(*dev);
    alloc::ChunkAllocator::Options aopts;
    aopts.ring_depth = ring_depth;
    allocator = std::make_unique<alloc::ChunkAllocator>(*container, aopts);
    core::CheckpointConfig ccfg;
    ccfg.codec_mode = mode;
    mgr = std::make_unique<core::CheckpointManager>(*allocator, ccfg);
    NvmConfig scfg;
    scfg.capacity = 64 * MiB;
    scfg.throttle = false;
    store = std::make_unique<net::RemoteStore>(scfg);
    remote = std::make_unique<net::RemoteMemory>(link, *store);
    core::RemoteConfig rcfg;
    rcfg.policy = core::PrecopyPolicy::kNone;
    helper = std::make_unique<core::RemoteCheckpointer>(
        std::vector<core::CheckpointManager*>{mgr.get()}, *remote, rcfg);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
    c.notify_write();
  }

  bool matches(const alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    const auto* p = static_cast<const std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      if (std::memcmp(p + i, &v, 8) != 0) return false;
    }
    return true;
  }

  void corrupt_newest_local(alloc::Chunk& c) {
    const auto& rec = c.record();
    dev->data()[rec.slot_off[rec.committed] + 17] ^= std::byte{0xFF};
  }

  net::Interconnect link;
  std::unique_ptr<NvmDevice> dev;
  std::unique_ptr<vmem::Container> container;
  std::unique_ptr<alloc::ChunkAllocator> allocator;
  std::unique_ptr<core::CheckpointManager> mgr;
  std::unique_ptr<net::RemoteStore> store;
  std::unique_ptr<net::RemoteMemory> remote;
  std::unique_ptr<core::RemoteCheckpointer> helper;
};

TEST(CodecChaos, BitFlipInEncodedFrameIsDetectedNeverLaundered) {
  // Flip one bit inside the committed *encoded* frame on the buddy store.
  // With the local slot also dead, the restore must report the loss --
  // decoding the damaged frame into "restored" state would be laundering.
  CodecChaosRig rig(core::CodecMode::kLz, /*ring_depth=*/1);
  auto* c = rig.allocator->nvalloc("flip", 64 * KiB, true);
  // Runs + seeded noise: compressible enough that the frame really is LZ.
  std::memset(c->data(), 0x2a, c->size() / 2);
  rig.fill(*c, 7);
  std::memset(static_cast<std::byte*>(c->data()) + c->size() / 4,
              0x2a, c->size() / 2);
  std::vector<std::byte> golden(c->size());
  std::memcpy(golden.data(), c->data(), c->size());
  rig.mgr->nvchkptall();
  ASSERT_FALSE(rig.helper->coordinate_now().degraded);
  ASSERT_GE(rig.helper->metrics().counter("codec.choice.lz").value(), 1u);

  FaultInjector fi;
  ASSERT_TRUE(rig.store->corrupt_committed(0, c->id(), fi));
  rig.corrupt_newest_local(*c);
  std::memset(c->data(), 0xcd, c->size());

  core::RestartCoordinator rc(*rig.mgr, rig.remote.get());
  const core::RestartReport rep = rc.restart_after(core::FailureKind::kSoft);
  EXPECT_EQ(rep.chunks_failed, 1);
  EXPECT_EQ(rep.chunks_remote, 0)
      << "a corrupted frame was accepted as a remote restore";
  // Whatever the coordinator left in DRAM, it is not a silent half-decode
  // of the damaged frame presented as the checkpoint.
  EXPECT_NE(rep.status, RestoreStatus::kOk);
  EXPECT_NE(rep.status, RestoreStatus::kOkFromRemote);

  // The transport heals: re-ship (helper re-encodes from the recovered
  // application state) and the next crash restores byte-exactly.
  std::memcpy(c->data(), golden.data(), golden.size());
  c->notify_write();
  rig.mgr->nvchkptall();
  ASSERT_FALSE(rig.helper->coordinate_now().degraded);
  rig.corrupt_newest_local(*c);
  std::memset(c->data(), 0xcd, c->size());
  const core::RestartReport rep2 = rc.restart_after(core::FailureKind::kSoft);
  EXPECT_EQ(rep2.status, RestoreStatus::kOkFromRemote);
  EXPECT_EQ(std::memcmp(c->data(), golden.data(), golden.size()), 0);
}

TEST(CodecChaos, LostDeltaBaseFallsBackThenRawReshipRecovers) {
  // A shipped delta frame references a local retained epoch. Corrupt that
  // base (standing in for a GC'd or rotted epoch) along with the newest
  // slot: the remote delta cannot decode, the ring cannot roll back, and
  // the restore must say so. Recovery is force_raw_reship(): the next
  // round ships a self-contained raw frame and restores succeed again.
  CodecChaosRig rig(core::CodecMode::kDelta, /*ring_depth=*/4);
  auto* c = rig.allocator->nvalloc("base_lost", 64 * KiB, true);
  rig.fill(*c, 21);
  rig.mgr->nvchkptall();  // epoch 1: the future delta base
  ASSERT_FALSE(rig.helper->coordinate_now().degraded);

  // Small update -> epoch 2 ships as a delta against epoch 1.
  std::memset(static_cast<std::byte*>(c->data()) + 2048, 0x5c, 256);
  c->notify_write();
  rig.mgr->nvchkptall();
  ASSERT_FALSE(rig.helper->coordinate_now().degraded);
  ASSERT_GE(rig.helper->metrics().counter("codec.choice.delta").value(), 1u);
  std::vector<std::byte> golden(c->size());
  ASSERT_TRUE(rig.allocator->read_committed(*c, golden.data()));

  // Kill every local committed epoch: newest slot and the delta's base.
  const auto slots =
      rig.allocator->epoch_directory()->ring(c->id())->snapshot_slots();
  for (const auto& s : slots) {
    if (s.committed()) rig.dev->data()[s.off + 33] ^= std::byte{0xFF};
  }
  std::memset(c->data(), 0xcd, c->size());

  core::RestartCoordinator rc(*rig.mgr, rig.remote.get());
  const core::RestartReport rep = rc.restart_after(core::FailureKind::kSoft);
  EXPECT_EQ(rep.chunks_failed, 1)
      << "delta decode without its base must fail, not improvise";
  EXPECT_EQ(rep.chunks_remote, 0);

  // Raw re-ship: the latch forces the next round to self-contained frames
  // and clears the stale send cursors so the chunk goes out again.
  rig.helper->force_raw_reship();
  std::memcpy(c->data(), golden.data(), golden.size());
  c->notify_write();
  rig.mgr->nvchkptall();
  const auto before =
      rig.helper->metrics().counter("codec.choice.delta").value();
  ASSERT_FALSE(rig.helper->coordinate_now().degraded);
  EXPECT_EQ(rig.helper->metrics().counter("codec.choice.delta").value(),
            before)
      << "forced raw round still chose delta";

  rig.corrupt_newest_local(*c);
  std::memset(c->data(), 0xcd, c->size());
  const core::RestartReport rep2 = rc.restart_after(core::FailureKind::kSoft);
  EXPECT_EQ(rep2.status, RestoreStatus::kOkFromRemote);
  EXPECT_EQ(std::memcmp(c->data(), golden.data(), golden.size()), 0);
}

// Acceptance: 200 mixed soft/hard trials, no undetected loss, every trial
// replayable, RunReport carries the measured-vs-model cross-check.
TEST(CampaignRunner, MixedCampaign200TrialsAcceptance) {
  CampaignSpec s = small_spec();
  s.trials = 200;
  s.seed = 0xacce97;
  const CampaignRunner runner(s);
  CampaignRunner mutable_runner(s);
  const CampaignResult res = mutable_runner.run();
  ASSERT_EQ(res.trials.size(), 200u);

  EXPECT_EQ(res.undetected_losses, 0)
      << "undetected data loss is always a library bug";
  // The mix produces real diversity.
  int crashed = 0;
  for (const TrialResult& t : res.trials) {
    if (t.crash_seconds >= 0) ++crashed;
  }
  EXPECT_GT(crashed, 50);
  EXPECT_GT(res.count(TrialOutcome::kRecoveredLocal), 0);

  // Every trial replays to the identical classification.
  for (const TrialResult& t : res.trials) {
    const TrialResult replay = runner.run_trial(t.seed);
    ASSERT_EQ(replay.outcome, t.outcome) << "trial " << t.index
                                         << " seed " << t.seed;
    ASSERT_EQ(replay.restored_epoch, t.restored_epoch);
  }

  // Model cross-check: both efficiencies sane, ratio recorded.
  EXPECT_GT(res.measured_efficiency, 0.0);
  EXPECT_LE(res.measured_efficiency, 1.0);
  EXPECT_GT(res.model_efficiency, 0.0);
  EXPECT_LE(res.model_efficiency, 1.0);
  EXPECT_GT(res.efficiency_ratio, 0.3);
  EXPECT_LT(res.efficiency_ratio, 3.0);

  telemetry::RunReport rep("fault_campaign_test");
  res.fill_report(s, rep);
  const Json& root = rep.root();
  ASSERT_NE(root.find("model_cross_check"), nullptr);
  ASSERT_NE(root.find("outcomes"), nullptr);
  ASSERT_NE(root.find("trials"), nullptr);
  EXPECT_EQ(root.find("trials")->items().size(), 200u);
  ASSERT_NE(root.find("metrics"), nullptr);
  EXPECT_NE(root.find("model_cross_check")->find("efficiency_ratio"),
            nullptr);
}

}  // namespace
}  // namespace nvmcp::fault
