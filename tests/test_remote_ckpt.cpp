// RemoteCheckpointer: eager pre-copy of committed chunks, coordination
// rounds producing a consistent remote cut, helper stats, and multi-rank
// coverage.
#include <gtest/gtest.h>

#include <cstring>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/remote.hpp"

namespace nvmcp::core {
namespace {

class RemoteCkptTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 2;

  RemoteCkptTest() : link_(2.0e9, 0.05) {
    for (int r = 0; r < kRanks; ++r) {
      NvmConfig cfg;
      cfg.capacity = 32 * MiB;
      cfg.throttle = false;
      devices_.push_back(std::make_unique<NvmDevice>(cfg));
      containers_.push_back(std::make_unique<vmem::Container>(*devices_.back()));
      allocators_.push_back(
          std::make_unique<alloc::ChunkAllocator>(*containers_.back()));
      CheckpointConfig ccfg;
      ccfg.rank = static_cast<std::uint32_t>(r);
      ccfg.local_policy = PrecopyPolicy::kNone;
      managers_.push_back(std::make_unique<CheckpointManager>(
          *allocators_.back(), ccfg));
    }
    NvmConfig scfg;
    scfg.capacity = 64 * MiB;
    scfg.throttle = false;
    store_ = std::make_unique<net::RemoteStore>(scfg);
    remote_mem_ = std::make_unique<net::RemoteMemory>(link_, *store_);
  }

  RemoteCheckpointer make_helper(RemoteConfig rcfg) {
    std::vector<CheckpointManager*> mgrs;
    for (auto& m : managers_) mgrs.push_back(m.get());
    return RemoteCheckpointer(mgrs, *remote_mem_, rcfg);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  net::Interconnect link_;
  std::vector<std::unique_ptr<NvmDevice>> devices_;
  std::vector<std::unique_ptr<vmem::Container>> containers_;
  std::vector<std::unique_ptr<alloc::ChunkAllocator>> allocators_;
  std::vector<std::unique_ptr<CheckpointManager>> managers_;
  std::unique_ptr<net::RemoteStore> store_;
  std::unique_ptr<net::RemoteMemory> remote_mem_;
};

TEST_F(RemoteCkptTest, CoordinationShipsAllCommittedChunks) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kNone;
  auto helper = make_helper(rcfg);

  std::vector<alloc::Chunk*> chunks;
  for (int r = 0; r < kRanks; ++r) {
    alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->nvalloc(
        "data", 128 * KiB, true);
    fill(*c, static_cast<std::uint64_t>(r) + 1);
    managers_[static_cast<std::size_t>(r)]->nvchkptall();
    chunks.push_back(c);
  }

  helper.coordinate_now();
  EXPECT_EQ(store_->stored_chunks(), 2u);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(store_->committed_epoch(static_cast<std::uint32_t>(r),
                                      chunks[static_cast<std::size_t>(r)]->id()),
              1u);
  }
  const RemoteStats s = helper.stats();
  EXPECT_EQ(s.coordinations, 1u);
  EXPECT_GE(s.bytes_sent, 2 * 128 * KiB);
  EXPECT_EQ(s.precopy_puts, 0u);
  EXPECT_GT(s.coordinated_puts, 0u);
}

TEST_F(RemoteCkptTest, UncommittedChunksAreNotShipped) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  allocators_[0]->nvalloc("never_committed", 64 * KiB, true);
  helper.coordinate_now();
  EXPECT_EQ(store_->stored_chunks(), 0u);
}

TEST_F(RemoteCkptTest, RemoteRestoreMatchesLocalCommit) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("state", 256 * KiB, true);
  fill(*c, 42);
  managers_[0]->nvchkptall();
  helper.coordinate_now();

  // Wipe DRAM and both local slots; restore must come from remote.
  fill(*c, 99);
  const auto& rec = c->record();
  devices_[0]->data()[rec.slot_off[0] + 5] ^= std::byte{0xFF};
  devices_[0]->data()[rec.slot_off[1] + 5] ^= std::byte{0xFF};
  EXPECT_EQ(restore_with_remote(*managers_[0], *remote_mem_),
            RestoreStatus::kOkFromRemote);

  Rng rng(42);
  const auto* p = static_cast<const std::byte*>(c->data());
  bool match = true;
  for (std::size_t i = 0; i + 8 <= c->size() && match; i += 8) {
    const std::uint64_t v = rng.next_u64();
    match = std::memcmp(p + i, &v, 8) == 0;
  }
  EXPECT_TRUE(match);
}

TEST_F(RemoteCkptTest, SecondCoordinationSkipsUnchangedChunks) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("stable", 128 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  const std::uint64_t sent_before = helper.stats().bytes_sent;
  helper.coordinate_now();  // nothing changed locally
  EXPECT_EQ(helper.stats().bytes_sent, sent_before);
}

TEST_F(RemoteCkptTest, NewLocalEpochIsReshippedAndRecommitted) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("evolving", 64 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 1u);
  fill(*c, 2);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 2u);
}

TEST_F(RemoteCkptTest, BackgroundHelperPrecopiesEagerly) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kCpc;  // eager, no delay
  rcfg.interval = 30.0;               // far away: only pre-copy runs
  rcfg.scan_period = 1e-3;
  auto helper = make_helper(rcfg);

  alloc::Chunk* c = allocators_[0]->nvalloc("eager", 128 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();

  helper.start();
  const Stopwatch sw;
  while (helper.stats().precopy_puts == 0 && sw.elapsed() < 2.0) {
    precise_sleep(1e-3);
  }
  helper.stop();
  EXPECT_GT(helper.stats().precopy_puts, 0u);
  // Pre-copied but not committed: a coordination is what seals the cut.
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 0u);
}

TEST_F(RemoteCkptTest, DelayedPolicyWaitsForGate) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kDcpcp;
  rcfg.interval = 10.0;
  rcfg.delay_fraction = 0.5;  // gate opens after 5 s: far beyond this test
  rcfg.scan_period = 1e-3;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("late", 64 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();
  helper.start();
  precise_sleep(0.05);
  helper.stop();
  EXPECT_EQ(helper.stats().precopy_puts, 0u);
}

TEST_F(RemoteCkptTest, HelperUtilizationTracked) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("util", 512 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();
  helper.start();
  precise_sleep(0.02);
  helper.coordinate_now();
  helper.stop();
  const RemoteStats s = helper.stats();
  EXPECT_GT(s.busy_seconds, 0.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_LE(s.helper_utilization(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace nvmcp::core
