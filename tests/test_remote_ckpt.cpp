// RemoteCheckpointer: eager pre-copy of committed chunks, coordination
// rounds producing a consistent remote cut, helper stats, retry/degraded
// behaviour under injected transport faults, and multi-rank coverage.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/remote.hpp"
#include "fault/injector.hpp"

namespace nvmcp::core {
namespace {

class RemoteCkptTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 2;

  RemoteCkptTest() : link_(2.0e9, 0.05) {
    for (int r = 0; r < kRanks; ++r) {
      NvmConfig cfg;
      cfg.capacity = 32 * MiB;
      cfg.throttle = false;
      devices_.push_back(std::make_unique<NvmDevice>(cfg));
      containers_.push_back(std::make_unique<vmem::Container>(*devices_.back()));
      allocators_.push_back(
          std::make_unique<alloc::ChunkAllocator>(*containers_.back()));
      CheckpointConfig ccfg;
      ccfg.rank = static_cast<std::uint32_t>(r);
      ccfg.local_policy = PrecopyPolicy::kNone;
      managers_.push_back(std::make_unique<CheckpointManager>(
          *allocators_.back(), ccfg));
    }
    NvmConfig scfg;
    scfg.capacity = 64 * MiB;
    scfg.throttle = false;
    store_ = std::make_unique<net::RemoteStore>(scfg);
    remote_mem_ = std::make_unique<net::RemoteMemory>(link_, *store_);
  }

  RemoteCheckpointer make_helper(RemoteConfig rcfg) {
    std::vector<CheckpointManager*> mgrs;
    for (auto& m : managers_) mgrs.push_back(m.get());
    return RemoteCheckpointer(mgrs, *remote_mem_, rcfg);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  net::Interconnect link_;
  std::vector<std::unique_ptr<NvmDevice>> devices_;
  std::vector<std::unique_ptr<vmem::Container>> containers_;
  std::vector<std::unique_ptr<alloc::ChunkAllocator>> allocators_;
  std::vector<std::unique_ptr<CheckpointManager>> managers_;
  std::unique_ptr<net::RemoteStore> store_;
  std::unique_ptr<net::RemoteMemory> remote_mem_;
};

TEST_F(RemoteCkptTest, CoordinationShipsAllCommittedChunks) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kNone;
  auto helper = make_helper(rcfg);

  std::vector<alloc::Chunk*> chunks;
  for (int r = 0; r < kRanks; ++r) {
    alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->nvalloc(
        "data", 128 * KiB, true);
    fill(*c, static_cast<std::uint64_t>(r) + 1);
    managers_[static_cast<std::size_t>(r)]->nvchkptall();
    chunks.push_back(c);
  }

  helper.coordinate_now();
  EXPECT_EQ(store_->stored_chunks(), 2u);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(store_->committed_epoch(static_cast<std::uint32_t>(r),
                                      chunks[static_cast<std::size_t>(r)]->id()),
              1u);
  }
  const RemoteStats s = helper.stats();
  EXPECT_EQ(s.coordinations, 1u);
  EXPECT_GE(s.bytes_sent, 2 * 128 * KiB);
  EXPECT_EQ(s.precopy_puts, 0u);
  EXPECT_GT(s.coordinated_puts, 0u);
}

TEST_F(RemoteCkptTest, UncommittedChunksAreNotShipped) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  allocators_[0]->nvalloc("never_committed", 64 * KiB, true);
  helper.coordinate_now();
  EXPECT_EQ(store_->stored_chunks(), 0u);
}

TEST_F(RemoteCkptTest, RemoteRestoreMatchesLocalCommit) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("state", 256 * KiB, true);
  fill(*c, 42);
  managers_[0]->nvchkptall();
  helper.coordinate_now();

  // Wipe DRAM and both local slots; restore must come from remote.
  fill(*c, 99);
  const auto& rec = c->record();
  devices_[0]->data()[rec.slot_off[0] + 5] ^= std::byte{0xFF};
  devices_[0]->data()[rec.slot_off[1] + 5] ^= std::byte{0xFF};
  EXPECT_EQ(restore_with_remote(*managers_[0], *remote_mem_),
            RestoreStatus::kOkFromRemote);

  Rng rng(42);
  const auto* p = static_cast<const std::byte*>(c->data());
  bool match = true;
  for (std::size_t i = 0; i + 8 <= c->size() && match; i += 8) {
    const std::uint64_t v = rng.next_u64();
    match = std::memcmp(p + i, &v, 8) == 0;
  }
  EXPECT_TRUE(match);
}

TEST_F(RemoteCkptTest, SecondCoordinationSkipsUnchangedChunks) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("stable", 128 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  const std::uint64_t sent_before = helper.stats().bytes_sent;
  helper.coordinate_now();  // nothing changed locally
  EXPECT_EQ(helper.stats().bytes_sent, sent_before);
}

TEST_F(RemoteCkptTest, NewLocalEpochIsReshippedAndRecommitted) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("evolving", 64 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 1u);
  fill(*c, 2);
  managers_[0]->nvchkptall();
  helper.coordinate_now();
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 2u);
}

TEST_F(RemoteCkptTest, BackgroundHelperPrecopiesEagerly) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kCpc;  // eager, no delay
  rcfg.interval = 30.0;               // far away: only pre-copy runs
  rcfg.scan_period = 1e-3;
  auto helper = make_helper(rcfg);

  alloc::Chunk* c = allocators_[0]->nvalloc("eager", 128 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();

  helper.start();
  const Stopwatch sw;
  while (helper.stats().precopy_puts == 0 && sw.elapsed() < 2.0) {
    precise_sleep(1e-3);
  }
  helper.stop();
  EXPECT_GT(helper.stats().precopy_puts, 0u);
  // Pre-copied but not committed: a coordination is what seals the cut.
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 0u);
}

TEST_F(RemoteCkptTest, DelayedPolicyWaitsForGate) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kDcpcp;
  rcfg.interval = 10.0;
  rcfg.delay_fraction = 0.5;  // gate opens after 5 s: far beyond this test
  rcfg.scan_period = 1e-3;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("late", 64 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();
  helper.start();
  precise_sleep(0.05);
  helper.stop();
  EXPECT_EQ(helper.stats().precopy_puts, 0u);
}

TEST_F(RemoteCkptTest, HelperUtilizationTracked) {
  RemoteConfig rcfg;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("util", 512 * KiB, true);
  fill(*c, 5);
  managers_[0]->nvchkptall();
  helper.start();
  precise_sleep(0.02);
  helper.coordinate_now();
  helper.stop();
  const RemoteStats s = helper.stats();
  EXPECT_GT(s.busy_seconds, 0.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_LE(s.helper_utilization(), 1.0 + 1e-9);
}

// A RemoteConfig with a small, deterministic retry policy for fault tests.
RemoteConfig fault_test_config() {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kNone;
  rcfg.retry_from_env = false;
  rcfg.retry.max_attempts = 2;
  rcfg.retry.phase2_attempts = 1;
  rcfg.retry.backoff_base = 1e-4;
  rcfg.retry.backoff_max = 1e-3;
  rcfg.retry.probation_puts = 1;
  return rcfg;
}

// The tentpole acceptance scenario, and the regression for the old
// epoch-as-success-flag bug: a put dropped by an outage used to still
// record its epoch in the sent bookkeeping, so later rounds skipped the
// chunk forever and the remote cut stayed silently stale.
TEST_F(RemoteCkptTest, OutageCoordinationIsDegradedThenConverges) {
  fault::FaultInjector inj;
  inj.arm(0x1dea);
  store_->set_fault_injector(&inj);
  auto helper = make_helper(fault_test_config());
  helper.set_fault_injector(&inj);

  std::vector<alloc::Chunk*> chunks;
  for (int r = 0; r < kRanks; ++r) {
    alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->nvalloc(
        "data", 64 * KiB, true);
    fill(*c, static_cast<std::uint64_t>(r) + 1);
    managers_[static_cast<std::size_t>(r)]->nvchkptall();
    chunks.push_back(c);
  }
  const CoordinationOutcome first = helper.coordinate_now();
  EXPECT_FALSE(first.degraded);
  EXPECT_EQ(first.stale_chunks, 0);

  // Epoch 2 commits locally while the link is fully out: the round must
  // complete *degraded*, with every chunk reported remote-stale and the
  // store still holding epoch 1 -- not pretend the cut advanced.
  for (int r = 0; r < kRanks; ++r) {
    fill(*chunks[static_cast<std::size_t>(r)],
         static_cast<std::uint64_t>(r) + 10);
    managers_[static_cast<std::size_t>(r)]->nvchkptall();
  }
  inj.set_outage(true);
  const CoordinationOutcome bad = helper.coordinate_now();
  EXPECT_TRUE(bad.degraded);
  EXPECT_EQ(bad.stale_chunks, kRanks);
  EXPECT_GT(bad.failed_sends, 0);
  EXPECT_GT(bad.retries, 0);
  EXPECT_EQ(helper.stale().size(), static_cast<std::size_t>(kRanks));
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(store_->committed_epoch(static_cast<std::uint32_t>(r),
                                      chunks[static_cast<std::size_t>(r)]->id()),
              1u);
    EXPECT_NE(helper.health(static_cast<std::size_t>(r)),
              RemoteHealth::kHealthy);
  }
  EXPECT_GT(helper.metrics().counter("remote.degraded_rounds").value(), 0u);

  // Outage clears: the next coordination re-ships the stale chunks and
  // converges the remote epoch everywhere; health recovers via probation.
  inj.set_outage(false);
  const CoordinationOutcome good = helper.coordinate_now();
  EXPECT_FALSE(good.degraded);
  EXPECT_EQ(good.stale_chunks, 0);
  EXPECT_TRUE(helper.stale().empty());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(store_->committed_epoch(static_cast<std::uint32_t>(r),
                                      chunks[static_cast<std::size_t>(r)]->id()),
              2u);
    EXPECT_EQ(helper.health(static_cast<std::size_t>(r)),
              RemoteHealth::kHealthy);
  }
}

TEST_F(RemoteCkptTest, StalledHelperRoundIsDegradedThenConverges) {
  fault::FaultInjector inj;
  inj.arm(0x57a11);
  store_->set_fault_injector(&inj);
  auto helper = make_helper(fault_test_config());
  helper.set_fault_injector(&inj);

  alloc::Chunk* c = allocators_[0]->nvalloc("stalled", 64 * KiB, true);
  fill(*c, 7);
  managers_[0]->nvchkptall();

  inj.set_helper_stalled(true);
  const CoordinationOutcome bad = helper.coordinate_now();
  EXPECT_TRUE(bad.degraded);
  EXPECT_EQ(bad.stale_chunks, 1);
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 0u);

  inj.set_helper_stalled(false);
  const CoordinationOutcome good = helper.coordinate_now();
  EXPECT_FALSE(good.degraded);
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 1u);
}

TEST_F(RemoteCkptTest, KilledHelperReportsDeadAndIsolatesRanks) {
  fault::FaultInjector inj;
  inj.arm(0xdead);
  store_->set_fault_injector(&inj);
  auto helper = make_helper(fault_test_config());
  helper.set_fault_injector(&inj);

  alloc::Chunk* c = allocators_[0]->nvalloc("victim", 64 * KiB, true);
  fill(*c, 3);
  managers_[0]->nvchkptall();

  inj.kill_helper();
  const CoordinationOutcome out = helper.coordinate_now();
  EXPECT_TRUE(out.helper_dead);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.stale_chunks, 1);  // the committed chunk never shipped
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(helper.health(static_cast<std::size_t>(r)),
              RemoteHealth::kIsolated);
  }
  EXPECT_EQ(store_->committed_epoch(0, c->id()), 0u);
}

TEST_F(RemoteCkptTest, RepeatedFailuresIsolateThenProbationRecovers) {
  fault::FaultInjector inj;
  inj.arm(0x150);
  store_->set_fault_injector(&inj);
  RemoteConfig rcfg = fault_test_config();
  rcfg.retry.isolate_failures = 2;
  auto helper = make_helper(rcfg);
  helper.set_fault_injector(&inj);

  alloc::Chunk* c = allocators_[0]->nvalloc("flaky", 64 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();

  inj.set_outage(true);
  helper.coordinate_now();  // phase1 + phase2 exhausted = 2 failures
  EXPECT_EQ(helper.health(0), RemoteHealth::kIsolated);
  EXPECT_GE(helper.metrics().counter("remote.health.isolations").value(), 1u);

  inj.set_outage(false);
  helper.coordinate_now();  // probation_puts=1: one good put recovers
  EXPECT_EQ(helper.health(0), RemoteHealth::kHealthy);
  EXPECT_GE(helper.metrics().counter("remote.health.recoveries").value(), 1u);
}

// Regression: the helper used to cache its coordination deadline locally,
// so an external coordinate_now() (which restarts the round) was followed
// by a second burst when the stale cached deadline expired.
TEST_F(RemoteCkptTest, ExternalCoordinationResetsHelperDeadline) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kNone;
  rcfg.interval = 1.0;
  rcfg.scan_period = 1e-3;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("timed", 64 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();

  helper.start();
  const Stopwatch sw;
  while (sw.elapsed() < 0.3) precise_sleep(5e-3);
  helper.coordinate_now();  // external round at ~0.3 s
  EXPECT_EQ(helper.stats().coordinations, 1u);
  // The helper's next round is now due at ~1.3 s. With the old cached
  // deadline it fired again at ~1.0 s (a double burst).
  while (sw.elapsed() < 1.12) precise_sleep(5e-3);
  EXPECT_EQ(helper.stats().coordinations, 1u);
  helper.stop();
}

// Regression: stop() on a never-started helper used to early-return past
// the wall_seconds gauge update, leaving it at zero after real work.
TEST_F(RemoteCkptTest, StopAlwaysSetsWallGauge) {
  RemoteConfig rcfg;
  rcfg.policy = PrecopyPolicy::kNone;
  auto helper = make_helper(rcfg);
  alloc::Chunk* c = allocators_[0]->nvalloc("gauge", 64 * KiB, true);
  fill(*c, 1);
  managers_[0]->nvchkptall();
  helper.coordinate_now();  // synchronous use, helper thread never started
  helper.stop();
  const telemetry::Gauge* g =
      helper.metrics().find_gauge("remote.wall_seconds");
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->value(), 0.0);
}

TEST(RemoteRetryEnvTest, KnobsParseAndClamp) {
  ::setenv("NVMCP_REMOTE_MAX_ATTEMPTS", "7", 1);
  ::setenv("NVMCP_REMOTE_PHASE2_ATTEMPTS", "999", 1);  // clamped to 16
  ::setenv("NVMCP_REMOTE_PUT_DEADLINE", "0.25", 1);
  ::setenv("NVMCP_REMOTE_BACKOFF_BASE", "0.002", 1);
  ::setenv("NVMCP_REMOTE_BACKOFF_MAX", "0.0001", 1);  // raised to >= base
  ::setenv("NVMCP_REMOTE_JITTER", "1.5", 1);          // clamped to 1
  ::setenv("NVMCP_REMOTE_ROUND_BUDGET", "2.5", 1);
  ::setenv("NVMCP_REMOTE_ISOLATE_FAILURES", "3", 1);
  ::setenv("NVMCP_REMOTE_PROBATION_PUTS", "garbage", 1);  // ignored
  RemoteConfig cfg;
  const RemoteRetryPolicy p = resolve_remote_retry(cfg);
  EXPECT_EQ(p.max_attempts, 7);
  EXPECT_EQ(p.phase2_attempts, 16);
  EXPECT_DOUBLE_EQ(p.put_deadline, 0.25);
  EXPECT_DOUBLE_EQ(p.backoff_base, 0.002);
  EXPECT_GE(p.backoff_max, p.backoff_base);
  EXPECT_DOUBLE_EQ(p.jitter, 1.0);
  EXPECT_DOUBLE_EQ(p.round_budget, 2.5);
  EXPECT_EQ(p.isolate_failures, 3);
  EXPECT_EQ(p.probation_puts, RemoteRetryPolicy{}.probation_puts);

  cfg.retry_from_env = false;  // pinned policies ignore the environment
  const RemoteRetryPolicy pinned = resolve_remote_retry(cfg);
  EXPECT_EQ(pinned.max_attempts, RemoteRetryPolicy{}.max_attempts);

  for (const char* k :
       {"NVMCP_REMOTE_MAX_ATTEMPTS", "NVMCP_REMOTE_PHASE2_ATTEMPTS",
        "NVMCP_REMOTE_PUT_DEADLINE", "NVMCP_REMOTE_BACKOFF_BASE",
        "NVMCP_REMOTE_BACKOFF_MAX", "NVMCP_REMOTE_JITTER",
        "NVMCP_REMOTE_ROUND_BUDGET", "NVMCP_REMOTE_ISOLATE_FAILURES",
        "NVMCP_REMOTE_PROBATION_PUTS"}) {
    ::unsetenv(k);
  }
}

}  // namespace
}  // namespace nvmcp::core
