// Page-level write tracking (the ablation the paper argues against):
// per-page faults, per-slot pending sets, incremental page copies, and
// correctness of checkpoints built from page deltas.
#include <gtest/gtest.h>

#include <sys/mman.h>

#include <cstring>

#include "alloc/nvmalloc.hpp"
#include "common/rng.hpp"
#include "core/manager.hpp"
#include "vmem/protection.hpp"

namespace nvmcp {
namespace {

TEST(PageTracking, EachPageFaultsIndividually) {
  const std::size_t page = vmem::ProtectionManager::host_page_size();
  void* buf = ::mmap(nullptr, 8 * page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(buf, MAP_FAILED);
  vmem::WriteTracker tracker;
  auto& mgr = vmem::ProtectionManager::instance();
  const int h = mgr.register_range(buf, 8 * page, &tracker,
                                   vmem::TrackMode::kMprotectPage);
  mgr.protect(h);

  auto* p = static_cast<std::byte*>(buf);
  p[0 * page] = std::byte{1};
  p[3 * page] = std::byte{1};
  p[3 * page + 100] = std::byte{1};  // same page: no extra fault
  p[7 * page] = std::byte{1};

  EXPECT_EQ(tracker.faults.load(), 3u);
  const auto dirty = mgr.collect_dirty_pages(h);
  EXPECT_EQ(dirty, (std::vector<std::size_t>{0, 3, 7}));
  // Drained: second collection is empty.
  EXPECT_TRUE(mgr.collect_dirty_pages(h).empty());

  mgr.unprotect(h);
  mgr.unregister_range(h);
  ::munmap(buf, 8 * page);
}

TEST(PageTracking, PageModeFaultsMoreThanChunkMode) {
  const std::size_t page = vmem::ProtectionManager::host_page_size();
  const std::size_t pages = 32;
  auto& mgr = vmem::ProtectionManager::instance();

  for (const auto mode : {vmem::TrackMode::kMprotect,
                          vmem::TrackMode::kMprotectPage}) {
    void* buf = ::mmap(nullptr, pages * page, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    ASSERT_NE(buf, MAP_FAILED);
    vmem::WriteTracker tracker;
    const int h = mgr.register_range(buf, pages * page, &tracker, mode);
    mgr.protect(h);
    auto* p = static_cast<std::byte*>(buf);
    for (std::size_t i = 0; i < pages; ++i) p[i * page] = std::byte{1};
    // Chunk mode: one fault total; page mode: one per page.
    EXPECT_EQ(tracker.faults.load(),
              mode == vmem::TrackMode::kMprotect ? 1u : pages);
    mgr.unprotect(h);
    mgr.unregister_range(h);
    ::munmap(buf, pages * page);
  }
}

class PagedAllocTest : public ::testing::Test {
 protected:
  PagedAllocTest() {
    NvmConfig cfg;
    cfg.capacity = 32 * MiB;
    cfg.throttle = false;
    dev_ = std::make_unique<NvmDevice>(cfg);
    container_ = std::make_unique<vmem::Container>(*dev_);
    alloc::ChunkAllocator::Options opts;
    opts.track_mode = vmem::TrackMode::kMprotectPage;
    allocator_ =
        std::make_unique<alloc::ChunkAllocator>(*container_, opts);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  std::unique_ptr<NvmDevice> dev_;
  std::unique_ptr<vmem::Container> container_;
  std::unique_ptr<alloc::ChunkAllocator> allocator_;
};

TEST_F(PagedAllocTest, FullRoundTripThroughPagedCopies) {
  alloc::Chunk* c = allocator_->nvalloc("paged", 64 * KiB, true);
  fill(*c, 1);
  allocator_->checkpoint_chunk(*c, 1);
  fill(*c, 2);
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
  Rng rng(1);
  const auto* p = static_cast<const std::byte*>(c->data());
  for (std::size_t i = 0; i + 8 <= c->size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    ASSERT_EQ(0, std::memcmp(p + i, &v, 8)) << "offset " << i;
  }
}

TEST_F(PagedAllocTest, SecondCheckpointCopiesOnlyDirtyPages) {
  const std::size_t page = vmem::ProtectionManager::host_page_size();
  alloc::Chunk* c = allocator_->nvalloc("delta", 16 * page, true);
  fill(*c, 1);
  allocator_->checkpoint_chunk(*c, 1);  // slot A: full initial copy
  allocator_->checkpoint_chunk(*c, 2);  // slot B: full initial copy

  const auto before = dev_->stats().bytes_written;
  // Touch exactly one page; the next checkpoint targets slot A again,
  // whose pending set now holds only that page (slots accumulate deltas
  // independently, so a slot two epochs behind would need both epochs').
  static_cast<std::byte*>(c->data())[5 * page + 9] = std::byte{0x77};
  allocator_->checkpoint_chunk(*c, 3);
  const auto delta = dev_->stats().bytes_written - before;
  EXPECT_LT(delta, 3 * page) << "one dirty page should move ~one page";

  // And the restored image is still exact.
  std::vector<std::byte> snapshot(c->size());
  std::memcpy(snapshot.data(), c->data(), c->size());
  fill(*c, 9);
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
  EXPECT_EQ(0, std::memcmp(c->data(), snapshot.data(), c->size()));
}

TEST_F(PagedAllocTest, AlternatingSlotsEachReceiveDeltas) {
  const std::size_t page = vmem::ProtectionManager::host_page_size();
  alloc::Chunk* c = allocator_->nvalloc("slots", 8 * page, true);
  // Four checkpoints with a different page touched each time; every
  // restore must be exact even though slots alternate.
  fill(*c, 0);
  allocator_->checkpoint_chunk(*c, 1);
  for (std::uint64_t e = 2; e <= 5; ++e) {
    static_cast<std::byte*>(
        c->data())[(e % 8) * page + 3] = static_cast<std::byte>(e);
    std::vector<std::byte> snapshot(c->size());
    std::memcpy(snapshot.data(), c->data(), c->size());
    allocator_->checkpoint_chunk(*c, e);
    fill(*c, 999 + e);  // scribble
    EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
    EXPECT_EQ(0, std::memcmp(c->data(), snapshot.data(), c->size()))
        << "epoch " << e;
  }
}

TEST_F(PagedAllocTest, ManagerWorksInPageMode) {
  core::CheckpointConfig ccfg;
  ccfg.local_policy = core::PrecopyPolicy::kNone;
  core::CheckpointManager mgr(*allocator_, ccfg);
  alloc::Chunk* c = allocator_->nvalloc("mgr_paged", 64 * KiB, true);
  fill(*c, 4);
  mgr.nvchkptall();
  fill(*c, 5);
  mgr.nvchkptall();
  EXPECT_EQ(mgr.restore_all(), RestoreStatus::kOk);
}

}  // namespace
}  // namespace nvmcp
