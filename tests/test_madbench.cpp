// MADBench2-style ramdisk vs in-memory checkpoint comparison (the paper's
// motivation experiment for treating NVM as memory).
#include <gtest/gtest.h>

#include "apps/madbench.hpp"

namespace nvmcp::apps {
namespace {

TEST(MadBench, RamdiskSlowerThanMemory) {
  MadBenchConfig cfg;
  cfg.data_bytes = 24 * MiB;
  cfg.writers = 2;
  cfg.repetitions = 2;
  const MadBenchResult r = run_madbench(cfg);
  EXPECT_GT(r.memory_seconds, 0.0);
  EXPECT_GT(r.ramdisk_seconds, r.memory_seconds);
  EXPECT_GT(r.ramdisk_slowdown, 0.0);
}

TEST(MadBench, RamdiskPathDoesKernelSynchronization) {
  MadBenchConfig cfg;
  cfg.data_bytes = 8 * MiB;
  cfg.writers = 2;
  cfg.repetitions = 1;
  const MadBenchResult r = run_madbench(cfg);
  // Per writer: open + writes + fsync + close syscalls.
  EXPECT_GT(r.ramdisk_syscalls, 2u * (8u + 3u) - 4u);
  EXPECT_GT(r.ramdisk_lock_acquisitions, 0u);
}

TEST(MadBench, SlowdownGrowsWithDataSize) {
  // The paper's key trend: the ramdisk gap widens with checkpoint size
  // (46% at 300 MB/core). Verify monotone-ish growth at test scale.
  MadBenchConfig small;
  small.data_bytes = 4 * MiB;
  small.writers = 2;
  small.repetitions = 5;
  MadBenchConfig big = small;
  big.data_bytes = 32 * MiB;
  const double s = run_madbench(small).ramdisk_slowdown;
  const double b = run_madbench(big).ramdisk_slowdown;
  // Both positive; the big case should not be dramatically better (wide
  // tolerance: single-core timing noise dominates at the small size).
  EXPECT_GT(s, 0.0);
  EXPECT_GT(b, 0.0);
  EXPECT_GT(b, 0.25 * s);
}

TEST(MadBench, SingleWriterStillShowsOverhead) {
  MadBenchConfig cfg;
  cfg.data_bytes = 16 * MiB;
  cfg.writers = 1;
  cfg.repetitions = 2;
  const MadBenchResult r = run_madbench(cfg);
  EXPECT_GT(r.ramdisk_slowdown, 0.0);
}

}  // namespace
}  // namespace nvmcp::apps
