// Erasure coding: GF(256) field laws, Reed-Solomon encode/reconstruct
// properties (any m erasures recoverable, m+1 not), and the parity-group
// checkpoint policy end to end.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ecc/gf256.hpp"
#include "ecc/parity_group.hpp"
#include "ecc/rs.hpp"

namespace nvmcp::ecc {
namespace {

TEST(GF256, FieldLaws) {
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(a, GF256::mul(b, c)),
              GF256::mul(GF256::mul(a, b), c));
    // Distributivity.
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
    EXPECT_EQ(GF256::mul(a, 1), a);
    EXPECT_EQ(GF256::mul(a, 0), 0);
  }
}

TEST(GF256, InverseAndDivision) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GF256::mul(x, GF256::inv(x)), 1) << a;
    EXPECT_EQ(GF256::div(x, x), 1);
  }
  EXPECT_THROW(GF256::inv(0), NvmcpError);
  EXPECT_THROW(GF256::div(1, 0), NvmcpError);
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 17) {
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 10; ++n) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), n), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

class RsFixture {
 public:
  RsFixture(int k, int m, std::size_t len, std::uint64_t seed)
      : rs_(k, m), len_(len) {
    Rng rng(seed);
    for (int i = 0; i < k + m; ++i) {
      buffers_.emplace_back(len);
    }
    for (int i = 0; i < k; ++i) {
      for (auto& byte : buffers_[static_cast<std::size_t>(i)]) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
      }
      originals_.push_back(buffers_[static_cast<std::size_t>(i)]);
    }
    std::vector<const std::uint8_t*> data;
    std::vector<std::uint8_t*> parity;
    for (int i = 0; i < k; ++i) {
      data.push_back(buffers_[static_cast<std::size_t>(i)].data());
    }
    for (int i = 0; i < m; ++i) {
      parity.push_back(buffers_[static_cast<std::size_t>(k + i)].data());
    }
    rs_.encode(data, parity, len);
    for (int i = 0; i < m; ++i) {
      originals_.push_back(buffers_[static_cast<std::size_t>(k + i)]);
    }
  }

  bool erase_and_reconstruct(const std::vector<int>& erased) {
    std::vector<bool> present(originals_.size(), true);
    for (const int e : erased) {
      present[static_cast<std::size_t>(e)] = false;
      std::memset(buffers_[static_cast<std::size_t>(e)].data(), 0xEE,
                  len_);
    }
    std::vector<std::uint8_t*> shards;
    for (auto& b : buffers_) shards.push_back(b.data());
    return rs_.reconstruct(shards, present, len_);
  }

  bool all_match() const {
    for (std::size_t i = 0; i < originals_.size(); ++i) {
      if (buffers_[i] != originals_[i]) return false;
    }
    return true;
  }

 private:
  ReedSolomon rs_;
  std::size_t len_;
  std::vector<std::vector<std::uint8_t>> buffers_;
  std::vector<std::vector<std::uint8_t>> originals_;
};

TEST(ReedSolomon, BadParamsRejected) {
  EXPECT_THROW(ReedSolomon(0, 1), NvmcpError);
  EXPECT_THROW(ReedSolomon(1, 0), NvmcpError);
  EXPECT_THROW(ReedSolomon(200, 100), NvmcpError);
}

TEST(ReedSolomon, VerifyDetectsCorruption) {
  ReedSolomon rs(3, 2);
  std::vector<std::vector<std::uint8_t>> bufs(5,
                                              std::vector<std::uint8_t>(64));
  Rng rng(1);
  for (int i = 0; i < 3; ++i) {
    for (auto& b : bufs[static_cast<std::size_t>(i)]) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
  }
  std::vector<const std::uint8_t*> data = {bufs[0].data(), bufs[1].data(),
                                           bufs[2].data()};
  std::vector<std::uint8_t*> parity = {bufs[3].data(), bufs[4].data()};
  rs.encode(data, parity, 64);
  std::vector<const std::uint8_t*> all = {bufs[0].data(), bufs[1].data(),
                                          bufs[2].data(), bufs[3].data(),
                                          bufs[4].data()};
  EXPECT_TRUE(rs.verify(all, 64));
  bufs[1][10] ^= 0xFF;
  EXPECT_FALSE(rs.verify(all, 64));
}

TEST(ReedSolomon, AnySingleErasureRecovers) {
  for (int e = 0; e < 6; ++e) {
    RsFixture fx(4, 2, 512, 77);
    EXPECT_TRUE(fx.erase_and_reconstruct({e}));
    EXPECT_TRUE(fx.all_match()) << "erased " << e;
  }
}

TEST(ReedSolomon, AnyDoubleErasureRecovers) {
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      RsFixture fx(4, 2, 256, 99);
      EXPECT_TRUE(fx.erase_and_reconstruct({a, b}));
      EXPECT_TRUE(fx.all_match()) << "erased " << a << "," << b;
    }
  }
}

TEST(ReedSolomon, TooManyErasuresFails) {
  RsFixture fx(4, 2, 128, 3);
  EXPECT_FALSE(fx.erase_and_reconstruct({0, 1, 2}));
}

// Property sweep across code geometries.
class RsGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(RsGeometry, MaxErasuresAlwaysRecover) {
  const auto [k, m, len] = GetParam();
  RsFixture fx(k, m, len, static_cast<std::uint64_t>(k * 1000 + m));
  std::vector<int> erased;
  for (int i = 0; i < m; ++i) erased.push_back(i * (k + m) / m);
  EXPECT_TRUE(fx.erase_and_reconstruct(erased));
  EXPECT_TRUE(fx.all_match());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::make_tuple(2, 1, 100),
                      std::make_tuple(4, 2, 1000),
                      std::make_tuple(8, 3, 4096),
                      std::make_tuple(12, 4, 257),
                      std::make_tuple(6, 6, 64)));

// --- parity group over real checkpoint stacks --------------------------

class ParityGroupTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  static constexpr std::size_t kChunkBytes = 64 * KiB;

  ParityGroupTest() : link_(2.0e9, 0.1) {
    for (int r = 0; r < kRanks; ++r) {
      NvmConfig cfg;
      cfg.capacity = 16 * MiB;
      cfg.throttle = false;
      devices_.push_back(std::make_unique<NvmDevice>(cfg));
      containers_.push_back(
          std::make_unique<vmem::Container>(*devices_.back()));
      allocators_.push_back(
          std::make_unique<alloc::ChunkAllocator>(*containers_.back()));
      core::CheckpointConfig ccfg;
      ccfg.rank = static_cast<std::uint32_t>(r);
      managers_.push_back(std::make_unique<core::CheckpointManager>(
          *allocators_.back(), ccfg));
    }
    NvmConfig scfg;
    scfg.capacity = 32 * MiB;
    scfg.throttle = false;
    store_ = std::make_unique<net::RemoteStore>(scfg);
    remote_ = std::make_unique<net::RemoteMemory>(link_, *store_);
  }

  void checkpoint_all(std::uint64_t seed) {
    for (int r = 0; r < kRanks; ++r) {
      alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->find(
          alloc::genid("grid"));
      if (!c) {
        c = allocators_[static_cast<std::size_t>(r)]->nvalloc(
            "grid", kChunkBytes, true);
      }
      Rng rng(seed * 100 + static_cast<std::uint64_t>(r));
      auto* p = static_cast<std::byte*>(c->data());
      for (std::size_t i = 0; i + 8 <= c->size(); i += 8) {
        const std::uint64_t v = rng.next_u64();
        std::memcpy(p + i, &v, 8);
      }
      managers_[static_cast<std::size_t>(r)]->nvchkptall();
    }
  }

  bool rank_matches(int r, std::uint64_t seed) {
    alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->find(
        alloc::genid("grid"));
    Rng rng(seed * 100 + static_cast<std::uint64_t>(r));
    const auto* p = static_cast<const std::byte*>(c->data());
    for (std::size_t i = 0; i + 8 <= c->size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      if (std::memcmp(p + i, &v, 8) != 0) return false;
    }
    return true;
  }

  std::vector<core::CheckpointManager*> manager_ptrs() {
    std::vector<core::CheckpointManager*> out;
    for (auto& m : managers_) out.push_back(m.get());
    return out;
  }

  net::Interconnect link_;
  std::vector<std::unique_ptr<NvmDevice>> devices_;
  std::vector<std::unique_ptr<vmem::Container>> containers_;
  std::vector<std::unique_ptr<alloc::ChunkAllocator>> allocators_;
  std::vector<std::unique_ptr<core::CheckpointManager>> managers_;
  std::unique_ptr<net::RemoteStore> store_;
  std::unique_ptr<net::RemoteMemory> remote_;
};

TEST_F(ParityGroupTest, ParityCostsFractionOfReplication) {
  ParityCheckpointGroup group(manager_ptrs(), *remote_, /*parity=*/2);
  checkpoint_all(1);
  const std::size_t sent = group.protect_epoch();
  EXPECT_EQ(sent, 2 * kChunkBytes);  // m shards, not k replicas
  const auto& s = group.stats();
  EXPECT_EQ(s.replication_bytes_equiv, 4 * kChunkBytes);
  EXPECT_EQ(s.parity_bytes_sent, 2 * kChunkBytes);
}

TEST_F(ParityGroupTest, RecoversTwoLostRanks) {
  ParityCheckpointGroup group(manager_ptrs(), *remote_, 2);
  checkpoint_all(7);
  group.protect_epoch();

  // Ranks 1 and 3 lose everything: DRAM scribbled, local NVM slots
  // corrupted.
  for (const int r : {1, 3}) {
    alloc::Chunk* c = allocators_[static_cast<std::size_t>(r)]->find(
        alloc::genid("grid"));
    std::memset(c->data(), 0xAB, c->size());
    const auto& rec = c->record();
    devices_[static_cast<std::size_t>(r)]
        ->data()[rec.slot_off[0]] ^= std::byte{0xFF};
    devices_[static_cast<std::size_t>(r)]
        ->data()[rec.slot_off[1]] ^= std::byte{0xFF};
  }

  EXPECT_TRUE(group.recover_ranks({1, 3}));
  EXPECT_TRUE(rank_matches(1, 7));
  EXPECT_TRUE(rank_matches(3, 7));
  // Survivors untouched.
  EXPECT_TRUE(rank_matches(0, 7));
  EXPECT_TRUE(rank_matches(2, 7));
}

TEST_F(ParityGroupTest, ThreeLostRanksExceedParity) {
  ParityCheckpointGroup group(manager_ptrs(), *remote_, 2);
  checkpoint_all(9);
  group.protect_epoch();
  EXPECT_FALSE(group.recover_ranks({0, 1, 2}));
}

TEST_F(ParityGroupTest, ReprotectAfterNewEpoch) {
  ParityCheckpointGroup group(manager_ptrs(), *remote_, 1);
  checkpoint_all(11);
  group.protect_epoch();
  checkpoint_all(12);  // new data, new epoch
  group.protect_epoch();

  alloc::Chunk* c = allocators_[2]->find(alloc::genid("grid"));
  std::memset(c->data(), 0, c->size());
  const auto& rec = c->record();
  devices_[2]->data()[rec.slot_off[0]] ^= std::byte{0xFF};
  devices_[2]->data()[rec.slot_off[1]] ^= std::byte{0xFF};

  EXPECT_TRUE(group.recover_ranks({2}));
  EXPECT_TRUE(rank_matches(2, 12));  // latest epoch, not the stale one
}

}  // namespace
}  // namespace nvmcp::ecc
