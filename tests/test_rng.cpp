#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmcp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowBounds) {
  Rng r(37);
  EXPECT_EQ(r.next_below(0), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

}  // namespace
}  // namespace nvmcp
