// Prediction table (DCPCP / Fig 6): learning phase, gating on modification
// counts, continuous adaptation, and miss-harmlessness contract.
#include <gtest/gtest.h>

#include "core/prediction.hpp"

namespace nvmcp::core {
namespace {

TEST(Prediction, UnlearnedGatesOpen) {
  PredictionTable t;
  EXPECT_FALSE(t.learned());
  EXPECT_TRUE(t.ready_for_precopy(1, 0));
}

TEST(Prediction, LearnsCountsFromFirstInterval) {
  PredictionTable t;
  t.observe_interval(/*chunk=*/1, /*mods=*/3);
  t.observe_interval(2, 1);
  EXPECT_TRUE(t.learned());
  EXPECT_EQ(t.predicted(1), 3u);
  EXPECT_EQ(t.predicted(2), 1u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Prediction, GateClosedUntilCountReached) {
  PredictionTable t;
  t.observe_interval(1, 3);
  // Like Fig 6's C3: not copied until the counter reaches the table value.
  EXPECT_FALSE(t.ready_for_precopy(1, 0));
  EXPECT_FALSE(t.ready_for_precopy(1, 1));
  EXPECT_FALSE(t.ready_for_precopy(1, 2));
  EXPECT_TRUE(t.ready_for_precopy(1, 3));
  EXPECT_TRUE(t.ready_for_precopy(1, 5));
}

TEST(Prediction, UnknownChunkGatesOpenAfterLearning) {
  PredictionTable t;
  t.observe_interval(1, 2);
  EXPECT_TRUE(t.ready_for_precopy(999, 0));
}

TEST(Prediction, AdaptsWithEma) {
  PredictionTable t(/*alpha=*/0.5);
  t.observe_interval(1, 4);
  t.observe_interval(1, 0);  // pattern changed
  EXPECT_EQ(t.predicted(1), 2u);  // 0.5*0 + 0.5*4
  t.observe_interval(1, 0);
  t.observe_interval(1, 0);
  EXPECT_LE(t.predicted(1), 1u);  // converges toward the new behaviour
}

TEST(Prediction, ZeroModChunkAlwaysReady) {
  PredictionTable t;
  t.observe_interval(7, 0);  // init-only chunk: never modified again
  EXPECT_TRUE(t.ready_for_precopy(7, 0));
}

TEST(Prediction, FractionalEstimateGatesOnFloor) {
  PredictionTable t(0.5);
  t.observe_interval(1, 3);
  t.observe_interval(1, 2);  // estimate 2.5 -> floor 2
  EXPECT_FALSE(t.ready_for_precopy(1, 1));
  EXPECT_TRUE(t.ready_for_precopy(1, 2));
}

}  // namespace
}  // namespace nvmcp::core
