#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.hpp"

namespace nvmcp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// parallel_for now enqueues one blocked range per worker instead of one
// task per index. With n far above the pool size, every index must still
// run exactly once — no index double-dispatched across block boundaries,
// none dropped by the n % workers remainder split.
TEST(ThreadPool, ParallelForBlockedRangesCoverEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;  // n >> pool size, n % workers == 0
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }

  // Uneven remainder: 10007 indices over 4 workers (remainder 3).
  std::vector<std::atomic<int>> odd(10007);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(odd.size(), [&odd, &total](std::size_t i) {
    ++odd[i];
    ++total;
  });
  EXPECT_EQ(total.load(), odd.size());
  for (std::size_t i = 0; i < odd.size(); ++i) {
    ASSERT_EQ(odd[i].load(), 1) << "index " << i;
  }

  // Fewer indices than workers and the empty range both behave.
  std::vector<std::atomic<int>> tiny(3);
  pool.parallel_for(tiny.size(), [&tiny](std::size_t i) { ++tiny[i]; });
  for (const auto& h : tiny) EXPECT_EQ(h.load(), 1);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn ran for n == 0"; });
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }  // join in destructor
  EXPECT_EQ(counter.load(), 8);
}

TEST(CyclicBarrier, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  CyclicBarrier barrier(kThreads);
  std::atomic<int> serials{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (barrier.arrive_and_wait()) ++serials;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serials.load(), kRounds);
}

TEST(CyclicBarrier, SingleParty) {
  CyclicBarrier barrier(1);
  EXPECT_TRUE(barrier.arrive_and_wait());
  EXPECT_TRUE(barrier.arrive_and_wait());
}

}  // namespace
}  // namespace nvmcp
