// Unit tests for the emulated NVM device: arena access, throttled write
// timing, nvdirty bits, wear counters, the flush/crash durability model,
// and file-backed persistence.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/rng.hpp"
#include "nvm/device.hpp"
#include "telemetry/metrics.hpp"

namespace nvmcp {
namespace {

NvmConfig small_config(bool throttle = false) {
  NvmConfig cfg;
  cfg.capacity = 4 * MiB;
  cfg.throttle = throttle;
  return cfg;
}

TEST(NvmDevice, RejectsUnalignedCapacity) {
  NvmConfig cfg;
  cfg.capacity = 12345;
  EXPECT_THROW(NvmDevice dev(cfg), NvmcpError);
}

TEST(NvmDevice, RejectsZeroCapacity) {
  NvmConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(NvmDevice dev(cfg), NvmcpError);
}

TEST(NvmDevice, WriteReadRoundTrip) {
  NvmDevice dev(small_config());
  std::vector<std::byte> src(64 * KiB);
  Rng rng(7);
  for (auto& b : src) b = static_cast<std::byte>(rng.next_u64());
  dev.write(8 * KiB, src.data(), src.size());
  std::vector<std::byte> dst(src.size());
  dev.read(8 * KiB, dst.data(), dst.size());
  EXPECT_EQ(0, std::memcmp(src.data(), dst.data(), src.size()));
}

TEST(NvmDevice, DirectLoadSeesWrites) {
  NvmDevice dev(small_config());
  const char msg[] = "byte addressable";
  dev.write(0, msg, sizeof(msg));
  EXPECT_EQ(0, std::memcmp(dev.data(), msg, sizeof(msg)));
}

TEST(NvmDevice, OutOfRangeAccessThrows) {
  NvmDevice dev(small_config());
  char b = 0;
  EXPECT_THROW(dev.write(dev.capacity(), &b, 1), NvmcpError);
  EXPECT_THROW(dev.read(dev.capacity() - 1, &b, 2), NvmcpError);
}

TEST(NvmDevice, ThrottledWriteRespectsBandwidth) {
  NvmConfig cfg = small_config(/*throttle=*/true);
  cfg.spec.write_bandwidth = 64.0 * MiB;  // slow: 2 MiB should take ~31 ms
  cfg.spec.page_write_latency = 0;
  NvmDevice dev(cfg);
  std::vector<std::byte> src(2 * MiB, std::byte{1});
  const double secs = dev.write(0, src.data(), src.size());
  const double expected = static_cast<double>(src.size()) / (64.0 * MiB);
  EXPECT_GT(secs, 0.7 * expected);
  EXPECT_LT(secs, 2.0 * expected);
}

TEST(NvmDevice, UnthrottledWriteIsFast) {
  NvmDevice dev(small_config(/*throttle=*/false));
  std::vector<std::byte> src(2 * MiB, std::byte{1});
  const double secs = dev.write(0, src.data(), src.size());
  EXPECT_LT(secs, 0.1);
}

TEST(NvmDevice, NvdirtyBitsTrackWrites) {
  NvmDevice dev(small_config());
  std::vector<std::byte> src(3 * kNvmPageSize, std::byte{2});
  dev.write(kNvmPageSize, src.data(), src.size());
  EXPECT_FALSE(dev.nvdirty(0));
  EXPECT_TRUE(dev.nvdirty(1));
  EXPECT_TRUE(dev.nvdirty(2));
  EXPECT_TRUE(dev.nvdirty(3));
  EXPECT_FALSE(dev.nvdirty(4));
  EXPECT_EQ(dev.nvdirty_bytes(kNvmPageSize, src.size()),
            3 * kNvmPageSize);
  dev.clear_nvdirty(kNvmPageSize, src.size());
  EXPECT_EQ(dev.nvdirty_bytes(kNvmPageSize, src.size()), 0u);
}

TEST(NvmDevice, WearCountsAccumulate) {
  NvmDevice dev(small_config());
  std::vector<std::byte> src(kNvmPageSize, std::byte{3});
  for (int i = 0; i < 5; ++i) dev.write(0, src.data(), src.size());
  EXPECT_GE(dev.stats().max_page_wear, 5u);
}

TEST(NvmDevice, StatsCountBytes) {
  NvmDevice dev(small_config());
  std::vector<std::byte> buf(10 * KiB, std::byte{4});
  dev.write(0, buf.data(), buf.size());
  dev.read(0, buf.data(), buf.size());
  const NvmDeviceStats s = dev.stats();
  EXPECT_EQ(s.bytes_written, 10 * KiB);
  EXPECT_EQ(s.bytes_read, 10 * KiB);
  EXPECT_EQ(s.write_calls, 1u);
  EXPECT_EQ(s.read_calls, 1u);
}

TEST(NvmDevice, FlushClearsUnflushedSet) {
  NvmDevice dev(small_config());
  std::vector<std::byte> src(2 * kNvmPageSize, std::byte{5});
  dev.write(0, src.data(), src.size());
  EXPECT_EQ(dev.unflushed_page_count(), 2u);
  dev.flush(0, src.size());
  dev.fence();
  EXPECT_EQ(dev.unflushed_page_count(), 0u);
}

TEST(NvmDevice, CrashScramblesOnlyUnflushedPages) {
  NvmDevice dev(small_config());
  std::vector<std::byte> a(kNvmPageSize, std::byte{0xAA});
  std::vector<std::byte> b(kNvmPageSize, std::byte{0xBB});
  dev.write(0, a.data(), a.size());
  dev.flush(0, a.size());
  dev.write(kNvmPageSize, b.data(), b.size());  // not flushed

  Rng rng(3);
  dev.simulate_crash(rng);

  EXPECT_EQ(0, std::memcmp(dev.data(), a.data(), a.size()))
      << "flushed page must survive the crash";
  EXPECT_NE(0, std::memcmp(dev.data() + kNvmPageSize, b.data(), b.size()))
      << "unflushed page must be scrambled";
  EXPECT_EQ(dev.unflushed_page_count(), 0u);
}

TEST(NvmDevice, CrashReportsScrambledPageCount) {
  NvmDevice dev(small_config());
  std::vector<std::byte> buf(3 * kNvmPageSize, std::byte{0xCC});
  dev.write(0, buf.data(), buf.size());  // three unflushed pages
  const std::uint64_t before = telemetry::MetricRegistry::global()
                                   .counter("nvm.crash.pages_scrambled")
                                   .value();
  Rng rng(7);
  EXPECT_EQ(dev.simulate_crash(rng), 3u);
  EXPECT_EQ(telemetry::MetricRegistry::global()
                .counter("nvm.crash.pages_scrambled")
                .value(),
            before + 3);
  // A second crash with nothing unflushed scrambles nothing.
  EXPECT_EQ(dev.simulate_crash(rng), 0u);
}

TEST(NvmDevice, RootOffsetPersistsInHeader) {
  NvmDevice dev(small_config());
  EXPECT_EQ(dev.root(), 0u);
  dev.set_root(4096);
  EXPECT_EQ(dev.root(), 4096u);
}

class NvmDeviceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("nvmcp_dev_test_" + std::to_string(::getpid()) + ".nvm");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(NvmDeviceFileTest, ContentsSurviveReopen) {
  const char msg[] = "persists across sessions";
  {
    NvmConfig cfg = small_config();
    cfg.backing_file = path_.string();
    NvmDevice dev(cfg);
    EXPECT_FALSE(dev.reopened());
    dev.write(0, msg, sizeof(msg));
    dev.flush(0, sizeof(msg));
    dev.set_root(kNvmPageSize);
  }
  {
    NvmConfig cfg = small_config();
    cfg.backing_file = path_.string();
    NvmDevice dev(cfg);
    EXPECT_TRUE(dev.reopened());
    EXPECT_EQ(dev.root(), kNvmPageSize);
    EXPECT_EQ(0, std::memcmp(dev.data(), msg, sizeof(msg)));
  }
}

TEST_F(NvmDeviceFileTest, CapacityMismatchMeansFreshDevice) {
  {
    NvmConfig cfg = small_config();
    cfg.backing_file = path_.string();
    NvmDevice dev(cfg);
  }
  NvmConfig cfg = small_config();
  cfg.capacity = 8 * MiB;  // different size: treat as a new device
  cfg.backing_file = path_.string();
  NvmDevice dev(cfg);
  EXPECT_FALSE(dev.reopened());
}

// Parameterized sweep: throttled writes should track the configured
// bandwidth across two orders of magnitude.
class DeviceBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeviceBandwidthSweep, TimingTracksConfiguredRate) {
  NvmConfig cfg = small_config(/*throttle=*/true);
  cfg.spec.write_bandwidth = GetParam();
  cfg.spec.page_write_latency = 0;
  NvmDevice dev(cfg);
  const std::size_t n = 1 * MiB;
  std::vector<std::byte> src(n, std::byte{6});
  const double secs = dev.write(0, src.data(), n);
  const double expected = static_cast<double>(n) / GetParam();
  EXPECT_GT(secs, 0.6 * expected);
  EXPECT_LT(secs, 2.5 * expected + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Rates, DeviceBandwidthSweep,
                         ::testing::Values(32.0 * MiB, 128.0 * MiB,
                                           512.0 * MiB, 2048.0 * MiB));

}  // namespace
}  // namespace nvmcp
