// Persistent metadata region: create/attach, record lifecycle, crash-safe
// commit ordering fields.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/error.hpp"
#include "vmem/metadata.hpp"

namespace nvmcp::vmem {
namespace {

NvmConfig cfg() {
  NvmConfig c;
  c.capacity = 8 * MiB;
  c.throttle = false;
  return c;
}

TEST(Metadata, CreateThenAttach) {
  NvmDevice dev(cfg());
  MetadataRegion created = MetadataRegion::create(dev, kNvmPageSize, 64);
  EXPECT_EQ(created.capacity(), 64u);
  EXPECT_EQ(dev.root(), kNvmPageSize);

  MetadataRegion attached = MetadataRegion::attach(dev);
  EXPECT_EQ(attached.capacity(), 64u);
  EXPECT_EQ(attached.region_offset(), kNvmPageSize);
}

TEST(Metadata, AttachWithoutRootThrows) {
  NvmDevice dev(cfg());
  EXPECT_THROW(MetadataRegion::attach(dev), NvmcpError);
}

TEST(Metadata, ZeroCapacityRejected) {
  NvmDevice dev(cfg());
  EXPECT_THROW(MetadataRegion::create(dev, kNvmPageSize, 0), NvmcpError);
}

TEST(Metadata, InsertFindErase) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 8);
  ChunkRecord* rec = meta.insert(42, "electrons");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->valid());
  EXPECT_EQ(rec->id, 42u);
  EXPECT_STREQ(rec->name, "electrons");
  EXPECT_FALSE(rec->has_committed());

  EXPECT_EQ(meta.find(42), rec);
  EXPECT_EQ(meta.find(43), nullptr);
  EXPECT_EQ(meta.record_count(), 1u);

  meta.erase(42);
  EXPECT_EQ(meta.find(42), nullptr);
  EXPECT_EQ(meta.record_count(), 0u);
}

TEST(Metadata, DuplicateInsertThrows) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 8);
  meta.insert(1, "a");
  EXPECT_THROW(meta.insert(1, "b"), NvmcpError);
}

TEST(Metadata, TableFullThrows) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 3);
  meta.insert(1, "a");
  meta.insert(2, "b");
  meta.insert(3, "c");
  EXPECT_THROW(meta.insert(4, "d"), NvmcpError);
  meta.erase(2);
  EXPECT_NE(meta.insert(4, "d"), nullptr);  // slot reuse
}

TEST(Metadata, LongNameTruncatedSafely) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 4);
  const std::string longname(100, 'x');
  ChunkRecord* rec = meta.insert(9, longname);
  EXPECT_LT(std::strlen(rec->name), sizeof(rec->name));
}

TEST(Metadata, InProgressSlotAlternation) {
  ChunkRecord rec;
  EXPECT_EQ(rec.committed, ChunkRecord::kNoneCommitted);
  EXPECT_EQ(rec.in_progress_slot(), 0u);
  rec.committed = 0;
  EXPECT_EQ(rec.in_progress_slot(), 1u);
  rec.committed = 1;
  EXPECT_EQ(rec.in_progress_slot(), 0u);
}

TEST(Metadata, RecordsPersistAcrossAttach) {
  NvmDevice dev(cfg());
  {
    MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 8);
    ChunkRecord* rec = meta.insert(7, "ions");
    rec->size = 12345;
    rec->slot_off[0] = 8192;
    meta.persist_record(*rec);
  }
  MetadataRegion meta = MetadataRegion::attach(dev);
  const ChunkRecord* rec = meta.find(7);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->size, 12345u);
  EXPECT_EQ(rec->slot_off[0], 8192u);
}

TEST(Metadata, ForEachVisitsOnlyValid) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 8);
  meta.insert(1, "a");
  meta.insert(2, "b");
  meta.erase(1);
  int visits = 0;
  meta.for_each([&](const ChunkRecord& r) {
    ++visits;
    EXPECT_EQ(r.id, 2u);
  });
  EXPECT_EQ(visits, 1);
}

TEST(Metadata, HeaderCursorPersists) {
  NvmDevice dev(cfg());
  MetadataRegion meta = MetadataRegion::create(dev, kNvmPageSize, 8);
  const auto base = meta.header().alloc_cursor;
  meta.header().alloc_cursor = base + 4096;
  meta.persist_header();
  MetadataRegion again = MetadataRegion::attach(dev);
  EXPECT_EQ(again.header().alloc_cursor, base + 4096);
}

}  // namespace
}  // namespace nvmcp::vmem
