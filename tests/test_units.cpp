#include <gtest/gtest.h>

#include "common/units.hpp"

namespace nvmcp {
namespace {

TEST(Units, PagesFor) {
  EXPECT_EQ(pages_for(0), 0u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(kNvmPageSize), 1u);
  EXPECT_EQ(pages_for(kNvmPageSize + 1), 2u);
  EXPECT_EQ(pages_for(10 * kNvmPageSize), 10u);
}

TEST(Units, RoundUp) {
  EXPECT_EQ(round_up(0, 64), 0u);
  EXPECT_EQ(round_up(1, 64), 64u);
  EXPECT_EQ(round_up(64, 64), 64u);
  EXPECT_EQ(round_up(65, 64), 128u);
}

TEST(Units, IsAligned) {
  EXPECT_TRUE(is_aligned(0, 4096));
  EXPECT_TRUE(is_aligned(8192, 4096));
  EXPECT_FALSE(is_aligned(100, 4096));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * MiB), "3.5 MiB");
  EXPECT_EQ(format_bytes(2.0 * GiB), "2.0 GiB");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(2.0 * GiB), "2.0 GiB/s");
  EXPECT_EQ(format_bandwidth(400.0 * MiB), "400.0 MiB/s");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(3e-6), "3.000 us");
  EXPECT_EQ(format_seconds(5e-8), "50.0 ns");
}

TEST(Units, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

}  // namespace
}  // namespace nvmcp
