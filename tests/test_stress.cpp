// Stress tests: concurrent application writers, the background pre-copy
// engine, and the remote helper all running against the same chunks, with
// end-to-end data verification. These are the races the protect/clear
// fault-counter dance and the two-version commit protocol exist for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/remote.hpp"

namespace nvmcp {
namespace {

/// Writer threads mutate chunks while the pre-copy engine runs and the
/// main thread takes coordinated checkpoints; after every checkpoint the
/// committed version must be internally consistent (its stored checksum
/// matches its payload -- torn copies would break it).
TEST(Stress, WritersVsPrecopyEngine) {
  NvmConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.throttle = false;
  NvmDevice dev(cfg);
  vmem::Container container(dev);
  alloc::ChunkAllocator allocator(container);

  core::CheckpointConfig ccfg;
  ccfg.local_policy = core::PrecopyPolicy::kCpc;
  ccfg.precopy_scan_period = 2e-4;  // aggressive scanning
  core::CheckpointManager mgr(allocator, ccfg);

  constexpr int kChunks = 6;
  std::vector<alloc::Chunk*> chunks;
  for (int i = 0; i < kChunks; ++i) {
    chunks.push_back(allocator.nvalloc("stress_" + std::to_string(i),
                                       64 * KiB, true));
    std::memset(chunks.back()->data(), i, chunks.back()->size());
  }
  mgr.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  constexpr int kWriters = 2;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        alloc::Chunk* c = chunks[rng.next_below(kChunks)];
        auto* p = static_cast<std::uint64_t*>(c->data());
        const std::size_t words = c->size() / 8;
        // A burst of writes scattered across the chunk. Writers stripe
        // onto disjoint words: the race under test is stores vs the
        // copy engine (by design), not writer-vs-writer on one word.
        for (int i = 0; i < 64; ++i) {
          p[kWriters * rng.next_below(words / kWriters) + w] =
              rng.next_u64();
        }
      }
    });
  }

  for (int iter = 0; iter < 30; ++iter) {
    precise_sleep(2e-3);
    mgr.nvchkptall();
    // Every committed slot must verify against its stored checksum.
    std::vector<std::byte> buf(64 * KiB);
    for (alloc::Chunk* c : chunks) {
      ASSERT_TRUE(c->record().has_committed()) << "iter " << iter;
      EXPECT_TRUE(allocator.read_committed(*c, buf.data()))
          << "torn commit at iter " << iter;
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  mgr.stop();

  const core::CheckpointStats s = mgr.stats();
  EXPECT_EQ(s.local_checkpoints, 30u);
  EXPECT_GT(s.protection_faults, 0u);
}

/// The remote helper ships chunks while local checkpoints keep committing
/// new epochs; after a final coordination, every remote chunk must
/// verify and carry one single epoch across the cut.
TEST(Stress, RemoteHelperVsLocalCommits) {
  NvmConfig cfg;
  cfg.capacity = 32 * MiB;
  cfg.throttle = false;
  NvmDevice dev(cfg);
  vmem::Container container(dev);
  alloc::ChunkAllocator allocator(container);
  core::CheckpointConfig ccfg;
  ccfg.local_policy = core::PrecopyPolicy::kNone;
  core::CheckpointManager mgr(allocator, ccfg);

  net::Interconnect link(4.0e9, 0.1);
  NvmConfig scfg;
  scfg.capacity = 32 * MiB;
  scfg.throttle = false;
  net::RemoteStore store(scfg);
  net::RemoteMemory remote(link, store);
  core::RemoteConfig rcfg;
  rcfg.policy = core::PrecopyPolicy::kCpc;
  rcfg.interval = 0.02;
  rcfg.scan_period = 5e-4;
  core::RemoteCheckpointer helper({&mgr}, remote, rcfg);

  constexpr int kChunks = 4;
  std::vector<alloc::Chunk*> chunks;
  for (int i = 0; i < kChunks; ++i) {
    chunks.push_back(allocator.nvalloc("rc_" + std::to_string(i),
                                       32 * KiB, true));
  }
  helper.start();

  Rng rng(5);
  for (int iter = 0; iter < 25; ++iter) {
    for (alloc::Chunk* c : chunks) {
      auto* p = static_cast<std::uint64_t*>(c->data());
      for (std::size_t w = 0; w < c->size() / 8; ++w) p[w] = rng.next_u64();
    }
    mgr.nvchkptall();
    precise_sleep(2e-3);
  }
  helper.coordinate_now();
  helper.stop();

  // The final remote cut: every chunk fetches, verifies, and reports the
  // same epoch (the coordination's consistent snapshot property).
  std::uint64_t cut_epoch = 0;
  std::vector<std::byte> buf(32 * KiB);
  for (alloc::Chunk* c : chunks) {
    EXPECT_TRUE(remote.get(0, c->id(), buf.data(), c->size()));
    const std::uint64_t e = store.committed_epoch(0, c->id());
    EXPECT_GT(e, 0u);
    if (cut_epoch == 0) cut_epoch = e;
    EXPECT_EQ(e, cut_epoch) << "remote cut mixes epochs";
  }
  EXPECT_EQ(cut_epoch, mgr.committed_epoch());
}

/// Allocation and deletion racing the pre-copy engine's chunk scans.
TEST(Stress, AllocDeleteChurnWithEngine) {
  NvmConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.throttle = false;
  NvmDevice dev(cfg);
  vmem::Container container(dev);
  alloc::ChunkAllocator allocator(container);
  core::CheckpointConfig ccfg;
  ccfg.local_policy = core::PrecopyPolicy::kCpc;
  ccfg.precopy_scan_period = 2e-4;
  core::CheckpointManager mgr(allocator, ccfg);

  // A stable chunk that must survive the churn intact.
  alloc::Chunk* anchor = allocator.nvalloc("anchor", 32 * KiB, true);
  std::memset(anchor->data(), 0x5A, anchor->size());
  mgr.start();

  for (int round = 0; round < 40; ++round) {
    const std::string name = "churn_" + std::to_string(round % 5);
    alloc::Chunk* c =
        allocator.nvalloc(name, 16 * KiB + 1024u * (round % 3), true);
    std::memset(c->data(), round, c->size());
    if (round % 4 == 0) mgr.nvchkptall();
    allocator.nvdelete(c->id());
  }
  mgr.nvchkptall();
  mgr.stop();

  std::vector<std::byte> expect(anchor->size(), std::byte{0x5A});
  EXPECT_EQ(allocator.restore_chunk(*anchor), RestoreStatus::kOk);
  EXPECT_EQ(0, std::memcmp(anchor->data(), expect.data(), expect.size()));
}

/// Many epochs on a file-backed device: wear accounting moves, the
/// metadata stays consistent, and the final state restores across a
/// reopen.
TEST(Stress, LongEpochChainFileBacked) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() /
       ("nvmcp_chain_" + std::to_string(::getpid()) + ".nvm")).string();
  fs::remove(path);
  NvmConfig cfg;
  cfg.capacity = 16 * MiB;
  cfg.throttle = false;
  cfg.backing_file = path;

  std::uint64_t final_seed = 0;
  {
    NvmDevice dev(cfg);
    vmem::Container container(dev);
    alloc::ChunkAllocator allocator(container);
    core::CheckpointManager mgr(allocator, core::CheckpointConfig{});
    alloc::Chunk* c = allocator.nvalloc("chain", 64 * KiB, true);
    Rng rng(1);
    for (int e = 0; e < 100; ++e) {
      final_seed = rng.next_u64();
      auto* p = static_cast<std::uint64_t*>(c->data());
      Rng fill(final_seed);
      for (std::size_t w = 0; w < c->size() / 8; ++w) {
        p[w] = fill.next_u64();
      }
      mgr.nvchkptall();
    }
    EXPECT_EQ(mgr.committed_epoch(), 100u);
    EXPECT_GT(dev.stats().max_page_wear, 40u);  // slots alternate
  }
  {
    NvmDevice dev(cfg);
    vmem::Container container(dev);
    alloc::ChunkAllocator allocator(container);
    alloc::Chunk* c = allocator.nvalloc("chain", 64 * KiB, true);
    ASSERT_EQ(c->restore_status(), RestoreStatus::kOk);
    Rng fill(final_seed);
    const auto* p = static_cast<const std::uint64_t*>(c->data());
    for (std::size_t w = 0; w < c->size() / 8; ++w) {
      ASSERT_EQ(p[w], fill.next_u64()) << "word " << w;
    }
  }
  fs::remove(path);
}

/// Version-ring GC racing continuous commit churn: a dedicated thread runs
/// saturated GC passes (watermark near zero, so every pass reclaims down
/// to the floor) while the main thread commits round after round.
/// Invariants under the race: the retention floor is never violated, the
/// newest committed version always verifies byte-exact, and a pinned
/// restore source survives any amount of saturation until unpinned.
TEST(Stress, RingGcVsCommitChurn) {
  NvmConfig cfg;
  // Sized so steady-state ring occupancy (~3 MiB of slots) stays above
  // the minimum watermark: every GC pass runs saturated.
  cfg.capacity = 32 * MiB;
  cfg.throttle = false;
  NvmDevice dev(cfg);
  vmem::Container container(dev);
  alloc::ChunkAllocator::Options aopts;
  aopts.ring_depth = 6;
  alloc::ChunkAllocator allocator(container, aopts);

  core::CheckpointConfig ccfg;
  ccfg.local_policy = core::PrecopyPolicy::kNone;
  ccfg.epoch_gc_background = false;  // we drive (and race) the GC ourselves
  ccfg.epoch_gc_watermark = 0.05;    // the clamp floor: always saturated
  ccfg.epoch_gc_floor = 2;
  core::CheckpointManager mgr(allocator, ccfg);
  ASSERT_NE(mgr.epoch_gc(), nullptr);

  constexpr int kChunks = 6;
  constexpr std::size_t kBytes = 192 * KiB;
  std::vector<alloc::Chunk*> chunks;
  for (int i = 0; i < kChunks; ++i) {
    chunks.push_back(allocator.nvalloc("gc_churn_" + std::to_string(i),
                                       kBytes, true));
  }
  const auto seed = [](int chunk, std::uint64_t round) {
    return 0x9e3779b9ull * (round * kChunks + chunk + 1);
  };
  const auto refill = [&](alloc::Chunk& c, std::uint64_t s) {
    Rng rng(s);
    auto* p = static_cast<std::uint64_t*>(c.data());
    for (std::size_t w = 0; w < c.size() / 8; ++w) p[w] = rng.next_u64();
  };
  const auto matches = [&](const void* data, std::uint64_t s) {
    Rng rng(s);
    const auto* p = static_cast<const std::uint64_t*>(data);
    for (std::size_t w = 0; w < kBytes / 8; ++w) {
      if (p[w] != rng.next_u64()) return false;
    }
    return true;
  };

  std::atomic<bool> stop{false};
  std::thread gc([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.epoch_gc()->run_pass();
      std::this_thread::yield();
    }
  });

  std::vector<std::byte> scratch(kBytes);
  constexpr std::uint64_t kPinEpoch = 12;
  constexpr std::uint64_t kRounds = 36;
  for (std::uint64_t round = 1; round <= kRounds; ++round) {
    for (int i = 0; i < kChunks; ++i) refill(*chunks[i], seed(i, round));
    mgr.nvchkptall();
    if (round == kPinEpoch) allocator.pin_epoch(*chunks[0], kPinEpoch);
    for (int i = 0; i < kChunks; ++i) {
      // Newest committed version stays byte-exact under reclamation (the
      // GC must never touch the newest slot).
      ASSERT_TRUE(allocator.read_committed(*chunks[i], scratch.data()))
          << "chunk " << i << " round " << round;
      ASSERT_TRUE(matches(scratch.data(), seed(i, round)))
          << "chunk " << i << " round " << round;
      // Retention floor: even fully saturated, each chunk keeps at least
      // the floor's worth of committed epochs, newest first.
      const auto epochs = allocator.retained_epochs(*chunks[i]);
      ASSERT_FALSE(epochs.empty());
      EXPECT_EQ(epochs.front(), round);
      EXPECT_GE(epochs.size(), std::min<std::size_t>(round, 2));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  gc.join();

  // The pinned epoch outlived 24 saturated rounds past its commit and
  // still restores byte-exact.
  EXPECT_EQ(allocator.restore_chunk_epoch(*chunks[0], kPinEpoch),
            RestoreStatus::kOkStale);
  EXPECT_TRUE(matches(chunks[0]->data(), seed(0, kPinEpoch)));
  allocator.unpin_epoch(*chunks[0], kPinEpoch);

  // Unpinned, epoch 12 is still within the count-based floor (the churn
  // trimmed chunk 0 to exactly {newest, 12}); one more commit pushes the
  // chunk above the floor and the next saturated pass reclaims it as the
  // globally-oldest slot.
  for (int i = 0; i < kChunks; ++i) refill(*chunks[i], seed(i, kRounds + 1));
  mgr.nvchkptall();
  mgr.epoch_gc()->run_pass();
  const auto epochs = allocator.retained_epochs(*chunks[0]);
  EXPECT_TRUE(std::find(epochs.begin(), epochs.end(), kPinEpoch) ==
              epochs.end());
  EXPECT_GT(mgr.metrics().counter("epoch.gc.slots_reclaimed").value(), 0u);
}

}  // namespace
}  // namespace nvmcp
