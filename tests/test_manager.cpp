// Tests for CheckpointManager: coordinated checkpoints, commit-from-precopy
// vs recopy vs skip outcomes, the pre-copy engine for each policy, learned
// interval/data estimates, and restore.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/manager.hpp"
#include "vmem/protection.hpp"

namespace nvmcp::core {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() {
    NvmConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.throttle = false;
    dev_ = std::make_unique<NvmDevice>(cfg);
    container_ = std::make_unique<vmem::Container>(*dev_);
    allocator_ = std::make_unique<alloc::ChunkAllocator>(*container_);
  }

  std::unique_ptr<CheckpointManager> make_manager(PrecopyPolicy policy,
                                                  double bw = 0) {
    CheckpointConfig cfg;
    cfg.local_policy = policy;
    cfg.nvm_bw_per_core = bw;
    cfg.precopy_scan_period = 1e-3;
    return std::make_unique<CheckpointManager>(*allocator_, cfg);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  std::unique_ptr<NvmDevice> dev_;
  std::unique_ptr<vmem::Container> container_;
  std::unique_ptr<alloc::ChunkAllocator> allocator_;
};

TEST_F(ManagerTest, CheckpointCommitsAllDirtyChunks) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 64 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  const double blocking = mgr->nvchkptall();
  EXPECT_GE(blocking, 0.0);
  EXPECT_EQ(mgr->committed_epoch(), 1u);
  EXPECT_TRUE(a->record().has_committed());
  EXPECT_TRUE(b->record().has_committed());
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.local_checkpoints, 1u);
  EXPECT_EQ(s.chunks_recopied_dirty, 2u);
  EXPECT_EQ(s.bytes_coordinated, 96 * KiB);
}

TEST_F(ManagerTest, NonPersistentChunksAreNotCheckpointed) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* scratch = allocator_->nvalloc("scratch", 16 * KiB, false);
  fill(*scratch, 3);
  mgr->nvchkptall();
  EXPECT_FALSE(scratch->record().has_committed());
}

TEST_F(ManagerTest, UnmodifiedChunkSkippedOnSecondCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  fill(*a, 1);
  mgr->nvchkptall();
  mgr->nvchkptall();  // nothing changed in between
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.chunks_skipped_unmodified, 1u);
  // The committed version still restores the correct (old) data.
  fill(*a, 9);
  EXPECT_EQ(mgr->restore_all(), RestoreStatus::kOk);
}

TEST_F(ManagerTest, EpochAdvancesPerCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 8 * KiB, true);
  for (int i = 1; i <= 3; ++i) {
    fill(*a, static_cast<std::uint64_t>(i));
    mgr->nvchkptall();
    EXPECT_EQ(mgr->committed_epoch(), static_cast<std::uint64_t>(i));
  }
}

TEST_F(ManagerTest, LearnedEstimatesAfterFirstCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kDcpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 128 * KiB, true);
  fill(*a, 1);
  EXPECT_EQ(mgr->learned_interval(), 0.0);
  precise_sleep(0.02);
  mgr->nvchkptall();
  EXPECT_GT(mgr->learned_interval(), 0.015);
  EXPECT_EQ(mgr->learned_data_size(), 128.0 * KiB);
}

TEST_F(ManagerTest, CpcEnginePrecopiesInBackground) {
  auto mgr = make_manager(PrecopyPolicy::kCpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 256 * KiB, true);
  fill(*a, 1);
  mgr->start();
  // CPC needs no learning phase: the engine should pick the chunk up.
  const Stopwatch sw;
  while (a->dirty_local() && sw.elapsed() < 2.0) precise_sleep(1e-3);
  EXPECT_FALSE(a->dirty_local());
  EXPECT_EQ(a->precopied_epoch(), 1u);

  // The coordinated step now only commits (no residual copy).
  mgr->nvchkptall();
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.chunks_committed_from_precopy, 1u);
  EXPECT_EQ(s.bytes_coordinated, 0u);
  EXPECT_GE(s.bytes_precopied, 256 * KiB);
  mgr->stop();
}

TEST_F(ManagerTest, DcpcWaitsForLearningPhase) {
  auto mgr = make_manager(PrecopyPolicy::kDcpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 256 * KiB, true);
  fill(*a, 1);
  mgr->start();
  precise_sleep(0.05);
  // No checkpoint yet -> still learning -> no pre-copy.
  EXPECT_TRUE(a->dirty_local());
  EXPECT_EQ(mgr->stats().bytes_precopied, 0u);

  mgr->nvchkptall();  // ends the learning phase
  fill(*a, 2);
  const Stopwatch sw;
  while (a->dirty_local() && sw.elapsed() < 2.0) precise_sleep(1e-3);
  EXPECT_FALSE(a->dirty_local()) << "post-learning, DCPC should pre-copy";
  mgr->stop();
}

TEST_F(ManagerTest, DcpcpSkipsHotChunksUntilPredictedCount) {
  auto mgr = make_manager(PrecopyPolicy::kDcpcp);
  alloc::Chunk* hot = allocator_->nvalloc("hot", 64 * KiB, true);

  // Learning interval: the chunk is modified 3 times. The first pre-copy
  // arms tracking (fresh chunks start unprotected); each following write
  // faults, counts a modification, and is re-armed by the next pre-copy.
  allocator_->precopy_chunk(*hot, mgr->next_epoch());
  for (int m = 0; m < 3; ++m) {
    fill(*hot, static_cast<std::uint64_t>(m));
    allocator_->precopy_chunk(*hot, mgr->next_epoch());  // re-arm tracking
  }
  mgr->nvchkptall();
  EXPECT_EQ(mgr->prediction().predicted(hot->id()), 3u);

  // Next interval: after only one modification the chunk is expected to
  // change twice more -> not ready for pre-copy.
  fill(*hot, 10);
  EXPECT_FALSE(mgr->prediction().ready_for_precopy(
      hot->id(), hot->tracker().mods_in_interval.load()));
}

TEST_F(ManagerTest, NvchkptidCheckpointsSingleChunk) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 16 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 16 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  mgr->nvchkptid(a->id());
  EXPECT_TRUE(a->record().has_committed());
  EXPECT_FALSE(b->record().has_committed());
  EXPECT_THROW(mgr->nvchkptid(12345), NvmcpError);
}

TEST_F(ManagerTest, RestoreAllRecoversEveryChunk) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 32 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  mgr->nvchkptall();
  std::vector<std::byte> va(a->size()), vb(b->size());
  std::memcpy(va.data(), a->data(), a->size());
  std::memcpy(vb.data(), b->data(), b->size());
  fill(*a, 8);
  fill(*b, 9);
  EXPECT_EQ(mgr->restore_all(), RestoreStatus::kOk);
  EXPECT_EQ(0, std::memcmp(a->data(), va.data(), a->size()));
  EXPECT_EQ(0, std::memcmp(b->data(), vb.data(), b->size()));
}

TEST_F(ManagerTest, StreamLimiterSlowsBlockingStep) {
  auto fast = make_manager(PrecopyPolicy::kNone, /*bw=*/0);
  alloc::Chunk* a = allocator_->nvalloc("a", 1 * MiB, true);
  fill(*a, 1);
  const double t_fast = fast->nvchkptall();

  auto slow = make_manager(PrecopyPolicy::kNone, /*bw=*/16.0 * MiB);
  fill(*a, 2);
  const double t_slow = slow->nvchkptall();
  EXPECT_GT(t_slow, t_fast);
  EXPECT_GT(t_slow, 0.03);  // 1 MiB at 16 MiB/s ~ 62 ms
}

TEST_F(ManagerTest, StartStopIdempotent) {
  auto mgr = make_manager(PrecopyPolicy::kCpc);
  mgr->start();
  mgr->start();
  mgr->stop();
  mgr->stop();
}

TEST_F(ManagerTest, FaultCountSurfacesInStats) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 16 * KiB, true);
  fill(*a, 1);
  mgr->nvchkptall();
  fill(*a, 2);  // one protection fault (chunk was re-armed by the copy)
  EXPECT_GE(mgr->stats().protection_faults, 1u);
}

// --- parallel data path (copy_threads) ---------------------------------

/// One independent device + allocator + manager stack, so runs at
/// different thread counts never share NVM state.
struct Stack {
  std::unique_ptr<NvmDevice> dev;
  std::unique_ptr<vmem::Container> cont;
  std::unique_ptr<alloc::ChunkAllocator> alloc;
  std::unique_ptr<CheckpointManager> mgr;
  std::vector<alloc::Chunk*> chunks;
};

/// Chunk shapes for the equivalence runs: mixed sizes (so the
/// largest-first sharding actually has to balance), plus one
/// non-persistent chunk that must stay untouched by the commit.
struct ChunkShape {
  const char* name;
  std::size_t size;
  bool persistent;
};
constexpr ChunkShape kShapes[] = {
    {"eq_a", 192 * KiB, true}, {"eq_b", 16 * KiB, true},
    {"eq_c", 64 * KiB, true},  {"eq_d", 128 * KiB, true},
    {"eq_e", 8 * KiB, true},   {"eq_f", 48 * KiB, true},
    {"eq_g", 96 * KiB, true},  {"eq_scratch", 32 * KiB, false},
};

Stack make_stack(PrecopyPolicy policy, std::size_t copy_threads) {
  Stack s;
  NvmConfig ncfg;
  ncfg.capacity = 64 * MiB;
  ncfg.throttle = false;
  s.dev = std::make_unique<NvmDevice>(ncfg);
  s.cont = std::make_unique<vmem::Container>(*s.dev);
  s.alloc = std::make_unique<alloc::ChunkAllocator>(*s.cont);
  CheckpointConfig ccfg;
  ccfg.local_policy = policy;
  ccfg.nvm_bw_per_core = 0;
  ccfg.precopy_scan_period = 1e-3;
  ccfg.copy_threads = copy_threads;
  s.mgr = std::make_unique<CheckpointManager>(*s.alloc, ccfg);
  for (const ChunkShape& sh : kShapes) {
    s.chunks.push_back(s.alloc->nvalloc(sh.name, sh.size, sh.persistent));
  }
  return s;
}

void fill_chunk(alloc::Chunk& c, std::uint64_t seed) {
  Rng rng(seed);
  auto* p = static_cast<std::byte*>(c.data());
  for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p + i, &v, 8);
  }
}

/// Everything the coordinated commit persists or counts, captured after a
/// run so serial and sharded runs can be compared field by field.
struct CommitObservation {
  std::uint64_t bytes_coordinated = 0;
  std::uint64_t local_checkpoints = 0;
  std::uint64_t committed_epoch = 0;
  std::vector<std::uint64_t> checksums;  // committed slot, per chunk
  std::vector<std::uint64_t> epochs;     // committed slot, per chunk
  std::vector<std::vector<std::byte>> restored;
};

CommitObservation run_and_observe(std::size_t copy_threads) {
  Stack s = make_stack(PrecopyPolicy::kNone, copy_threads);
  EXPECT_EQ(s.mgr->copy_threads(), copy_threads);
  // Two checkpoints with a partial re-dirty in between, so the second
  // commit exercises recopy, skip and (non-persistent) ignore together.
  for (std::size_t i = 0; i < s.chunks.size(); ++i) {
    fill_chunk(*s.chunks[i], 100 + i);
  }
  s.mgr->nvchkptall();
  for (std::size_t i = 0; i < s.chunks.size(); i += 2) {
    fill_chunk(*s.chunks[i], 200 + i);
  }
  s.mgr->nvchkptall();

  CommitObservation ob;
  const CheckpointStats st = s.mgr->stats();
  ob.bytes_coordinated = st.bytes_coordinated;
  ob.local_checkpoints = st.local_checkpoints;
  ob.committed_epoch = s.mgr->committed_epoch();
  for (alloc::Chunk* c : s.chunks) {
    if (!c->persistent()) continue;
    const vmem::ChunkRecord& rec = c->record();
    EXPECT_TRUE(rec.has_committed()) << c->record().name;
    ob.checksums.push_back(rec.checksum[rec.committed]);
    ob.epochs.push_back(rec.epoch[rec.committed]);
  }
  // Scribble over DRAM, then restore and capture the recovered payloads
  // (the restart-path byte verification of the acceptance criteria).
  for (alloc::Chunk* c : s.chunks) fill_chunk(*c, 999);
  EXPECT_EQ(s.mgr->restore_all(), RestoreStatus::kOk);
  for (alloc::Chunk* c : s.chunks) {
    if (!c->persistent()) continue;
    std::vector<std::byte> bytes(c->size());
    std::memcpy(bytes.data(), c->data(), c->size());
    ob.restored.push_back(std::move(bytes));
  }
  return ob;
}

// The tentpole's equivalence criterion: sharding the commit across 4
// workers must change nothing observable — same coordinated bytes, same
// per-chunk committed checksums and epochs, same restored payloads.
TEST_F(ManagerTest, ParallelCommitMatchesSerialByteForByte) {
  const CommitObservation serial = run_and_observe(1);
  const CommitObservation sharded = run_and_observe(4);

  EXPECT_EQ(serial.bytes_coordinated, sharded.bytes_coordinated);
  EXPECT_EQ(serial.local_checkpoints, sharded.local_checkpoints);
  EXPECT_EQ(serial.committed_epoch, sharded.committed_epoch);
  ASSERT_EQ(serial.checksums.size(), sharded.checksums.size());
  for (std::size_t i = 0; i < serial.checksums.size(); ++i) {
    EXPECT_EQ(serial.checksums[i], sharded.checksums[i]) << "chunk " << i;
    EXPECT_EQ(serial.epochs[i], sharded.epochs[i]) << "chunk " << i;
  }
  ASSERT_EQ(serial.restored.size(), sharded.restored.size());
  for (std::size_t i = 0; i < serial.restored.size(); ++i) {
    ASSERT_EQ(serial.restored[i].size(), sharded.restored[i].size());
    EXPECT_EQ(0, std::memcmp(serial.restored[i].data(),
                             sharded.restored[i].data(),
                             serial.restored[i].size()))
        << "chunk " << i;
  }
}

// Sharded commit racing the background pre-copy engine: the engine
// pre-copies between coordinated steps while rounds keep re-dirtying;
// every committed chunk must still restore to exactly what was in DRAM at
// its last checkpoint. The fills hold the commit mutex so they interleave
// with engine copies at batch granularity (chunks go stale after being
// pre-copied and must be recopied) without the byte-level store-vs-copy
// overlap, which is test_stress territory and a TSan report by design.
TEST_F(ManagerTest, ParallelCommitRacingPrecopyRestoresCleanly) {
  Stack s = make_stack(PrecopyPolicy::kCpc, 4);
  s.mgr->start();
  std::vector<std::vector<std::byte>> golden(s.chunks.size());
  for (int round = 1; round <= 4; ++round) {
    {
      std::lock_guard<std::mutex> fill_lock(s.mgr->commit_mutex());
      for (std::size_t i = 0; i < s.chunks.size(); ++i) {
        fill_chunk(*s.chunks[i],
                   static_cast<std::uint64_t>(round) * 1000 + i);
      }
    }
    precise_sleep(2e-3);  // let the pre-copy engine race ahead
    s.mgr->nvchkptall();
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
      if (!s.chunks[i]->persistent()) continue;
      golden[i].resize(s.chunks[i]->size());
      std::memcpy(golden[i].data(), s.chunks[i]->data(),
                  s.chunks[i]->size());
    }
  }
  s.mgr->stop();
  for (alloc::Chunk* c : s.chunks) fill_chunk(*c, 31337);
  EXPECT_EQ(s.mgr->restore_all(), RestoreStatus::kOk);
  for (std::size_t i = 0; i < s.chunks.size(); ++i) {
    if (!s.chunks[i]->persistent()) continue;
    EXPECT_EQ(0, std::memcmp(s.chunks[i]->data(), golden[i].data(),
                             golden[i].size()))
        << "chunk " << i;
  }
}

// --- dirty-tracking modes (sub-page ranges, batched re-arm) ------------

/// Stack whose allocator pins a specific dirty-tracking mode (the fixture
/// allocator uses the default, env-resolved options).
struct ModeStack {
  std::unique_ptr<NvmDevice> dev;
  std::unique_ptr<vmem::Container> cont;
  std::unique_ptr<alloc::ChunkAllocator> alloc;
  std::unique_ptr<CheckpointManager> mgr;
  std::vector<alloc::Chunk*> chunks;
};

constexpr const char* kModeNames[] = {"sp_a", "sp_b", "sp_c",
                                      "sp_d", "sp_e", "sp_f"};

ModeStack make_mode_stack(vmem::TrackMode mode, int batch_rearm,
                          std::size_t copy_threads) {
  ModeStack s;
  NvmConfig ncfg;
  ncfg.capacity = 64 * MiB;
  ncfg.throttle = false;
  s.dev = std::make_unique<NvmDevice>(ncfg);
  s.cont = std::make_unique<vmem::Container>(*s.dev);
  alloc::ChunkAllocator::Options aopts;
  aopts.track_mode = mode;
  s.alloc = std::make_unique<alloc::ChunkAllocator>(*s.cont, aopts);
  CheckpointConfig ccfg;
  ccfg.local_policy = PrecopyPolicy::kNone;
  ccfg.nvm_bw_per_core = 0;
  ccfg.copy_threads = copy_threads;
  ccfg.batch_rearm = batch_rearm;
  s.mgr = std::make_unique<CheckpointManager>(*s.alloc, ccfg);
  for (const char* name : kModeNames) {
    s.chunks.push_back(s.alloc->nvalloc(name, 16 * KiB, true));
  }
  return s;
}

/// A handful of small 8-aligned stores per chunk (64..192 B each, well
/// under the coverage fallback), logged after the store under kWriteLog
/// or flagged wholesale under kSoftware.
void mutate_small(alloc::Chunk& c, std::uint64_t seed, bool writelog) {
  Rng rng(seed);
  auto* p = static_cast<std::byte*>(c.data());
  for (int w = 0; w < 12; ++w) {
    const std::size_t len = 64 + rng.next_below(3) * 64;
    const std::size_t off = rng.next_below(c.size() - len) & ~std::size_t{7};
    for (std::size_t i = 0; i + 8 <= len; i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + off + i, &v, 8);
    }
    if (writelog) c.log_write(off, len);
  }
  if (!writelog) c.notify_write();
}

struct ModeObservation {
  std::uint64_t device_bytes_written = 0;
  std::vector<std::vector<std::byte>> restored;
};

/// Full fill + checkpoint, then four rounds of small mutations + checkpoint
/// (so BOTH version slots take incremental commits), then scribble and
/// restore. Every mode sees the identical store sequence.
ModeObservation run_mode(vmem::TrackMode mode) {
  ModeStack s = make_mode_stack(mode, -1, 4);
  const bool writelog = mode == vmem::TrackMode::kWriteLog;
  for (std::size_t i = 0; i < s.chunks.size(); ++i) {
    fill_chunk(*s.chunks[i], 7000 + i);
    if (writelog) s.chunks[i]->log_write(0, s.chunks[i]->size());
  }
  s.mgr->nvchkptall();
  for (std::uint64_t round = 1; round <= 4; ++round) {
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
      mutate_small(*s.chunks[i], round * 100 + i, writelog);
    }
    s.mgr->nvchkptall();
  }
  std::vector<std::vector<std::byte>> golden;
  for (alloc::Chunk* c : s.chunks) {
    golden.emplace_back(static_cast<std::byte*>(c->data()),
                        static_cast<std::byte*>(c->data()) + c->size());
  }
  for (alloc::Chunk* c : s.chunks) fill_chunk(*c, 424242);
  EXPECT_EQ(s.mgr->restore_all(), RestoreStatus::kOk);
  ModeObservation ob;
  ob.device_bytes_written = s.dev->stats().bytes_written;
  for (std::size_t i = 0; i < s.chunks.size(); ++i) {
    alloc::Chunk* c = s.chunks[i];
    EXPECT_EQ(0, std::memcmp(c->data(), golden[i].data(), c->size()))
        << "chunk " << i << " after restore";
    ob.restored.emplace_back(static_cast<std::byte*>(c->data()),
                             static_cast<std::byte*>(c->data()) + c->size());
  }
  return ob;
}

// Sub-page range commits (kWriteLog) must be byte-for-byte equivalent to
// whole-chunk commits (kSoftware) under the same store sequence — while
// writing fewer bytes to the device, proving the range path (not the
// whole-chunk fallback) carried the incremental rounds.
TEST_F(ManagerTest, SubPageCommitMatchesWholeChunkByteForByte) {
  const ModeObservation ranges = run_mode(vmem::TrackMode::kWriteLog);
  const ModeObservation whole = run_mode(vmem::TrackMode::kSoftware);
  ASSERT_EQ(ranges.restored.size(), whole.restored.size());
  for (std::size_t i = 0; i < ranges.restored.size(); ++i) {
    ASSERT_EQ(ranges.restored[i].size(), whole.restored[i].size());
    EXPECT_EQ(0, std::memcmp(ranges.restored[i].data(),
                             whole.restored[i].data(),
                             ranges.restored[i].size()))
        << "chunk " << i;
  }
  EXPECT_LT(ranges.device_bytes_written, whole.device_bytes_written);
}

// Batched re-arm is a syscall-count optimisation only: with the identical
// fault-driven schedule it must commit identical bytes while issuing no
// more mprotect calls than the per-chunk path.
TEST_F(ManagerTest, BatchRearmMatchesPerChunkRearmByteForByte) {
  auto run = [](int batch_rearm, std::uint64_t* mprotect_calls) {
    ModeStack s = make_mode_stack(vmem::TrackMode::kMprotect, batch_rearm, 1);
    const std::uint64_t calls0 =
        vmem::ProtectionManager::instance().total_mprotect_calls();
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
      fill_chunk(*s.chunks[i], 5000 + i);
    }
    s.mgr->nvchkptall();
    for (std::uint64_t round = 1; round <= 3; ++round) {
      for (std::size_t i = 0; i < s.chunks.size(); ++i) {
        mutate_small(*s.chunks[i], round * 17 + i, false);
      }
      s.mgr->nvchkptall();
    }
    *mprotect_calls =
        vmem::ProtectionManager::instance().total_mprotect_calls() - calls0;
    std::vector<std::vector<std::byte>> golden;
    for (alloc::Chunk* c : s.chunks) {
      golden.emplace_back(static_cast<std::byte*>(c->data()),
                          static_cast<std::byte*>(c->data()) + c->size());
    }
    for (alloc::Chunk* c : s.chunks) fill_chunk(*c, 171717);
    EXPECT_EQ(s.mgr->restore_all(), RestoreStatus::kOk);
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(s.chunks[i]->data(), golden[i].data(),
                               golden[i].size()))
          << "chunk " << i << " batch_rearm=" << batch_rearm;
    }
    return golden;
  };
  std::uint64_t batched_calls = 0, single_calls = 0;
  const auto batched = run(1, &batched_calls);
  const auto single = run(0, &single_calls);
  ASSERT_EQ(batched.size(), single.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(batched[i].data(), single[i].data(),
                             batched[i].size()))
        << "chunk " << i;
  }
  EXPECT_LE(batched_calls, single_calls);
}

TEST_F(ManagerTest, BatchRearmResolvesFromEnvironment) {
  ::unsetenv("NVMCP_BATCH_REARM");
  EXPECT_TRUE(resolve_batch_rearm(-1));  // unset: default on
  ::setenv("NVMCP_BATCH_REARM", "0", 1);
  EXPECT_FALSE(resolve_batch_rearm(-1));
  ::setenv("NVMCP_BATCH_REARM", "off", 1);
  EXPECT_FALSE(resolve_batch_rearm(-1));
  ::setenv("NVMCP_BATCH_REARM", "false", 1);
  EXPECT_FALSE(resolve_batch_rearm(-1));
  ::setenv("NVMCP_BATCH_REARM", "1", 1);
  EXPECT_TRUE(resolve_batch_rearm(-1));
  // Explicit configuration wins over the environment in either direction.
  ::setenv("NVMCP_BATCH_REARM", "1", 1);
  EXPECT_FALSE(resolve_batch_rearm(0));
  ::setenv("NVMCP_BATCH_REARM", "0", 1);
  EXPECT_TRUE(resolve_batch_rearm(1));
  ::unsetenv("NVMCP_BATCH_REARM");
}

TEST_F(ManagerTest, CopyThreadsResolvesFromEnvironmentWhenZero) {
  ::setenv("NVMCP_COPY_THREADS", "3", 1);
  EXPECT_EQ(resolve_copy_threads(0), 3u);
  EXPECT_EQ(resolve_copy_threads(2), 2u);  // explicit value wins
  ::setenv("NVMCP_COPY_THREADS", "not-a-number", 1);
  EXPECT_EQ(resolve_copy_threads(0), 1u);
  ::setenv("NVMCP_COPY_THREADS", "9999", 1);
  EXPECT_EQ(resolve_copy_threads(0), 64u);  // clamped
  ::unsetenv("NVMCP_COPY_THREADS");
  EXPECT_EQ(resolve_copy_threads(0), 1u);
}

// ---------------------------------------------------------------------------
// Streaming restore over the version ring: restore-to-epoch, rollback on a
// bad target, and the commit admission rule while chunks stream back in.

/// A self-contained device/allocator/manager stack with a version ring.
/// bw_scale > 0 turns the device throttle on at scaled PCM bandwidths so a
/// restore takes a controlled, nonzero wall-clock window.
struct RingStack {
  std::unique_ptr<NvmDevice> dev;
  std::unique_ptr<vmem::Container> cont;
  std::unique_ptr<alloc::ChunkAllocator> alloc;
  std::unique_ptr<CheckpointManager> mgr;

  explicit RingStack(int ring_depth, double bw_scale = 0) {
    NvmConfig ncfg;
    ncfg.capacity = 64 * MiB;
    ncfg.throttle = bw_scale > 0;
    if (bw_scale > 0) ncfg.spec = NvmSpec::pcm().scaled(bw_scale);
    dev = std::make_unique<NvmDevice>(ncfg);
    cont = std::make_unique<vmem::Container>(*dev);
    alloc::ChunkAllocator::Options aopts;
    aopts.ring_depth = ring_depth;
    alloc = std::make_unique<alloc::ChunkAllocator>(*cont, aopts);
    CheckpointConfig ccfg;
    ccfg.local_policy = PrecopyPolicy::kNone;
    ccfg.epoch_gc_background = false;
    mgr = std::make_unique<CheckpointManager>(*alloc, ccfg);
  }
};

void fill_seeded(alloc::Chunk& c, std::uint64_t seed) {
  Rng rng(seed);
  auto* p = static_cast<std::byte*>(c.data());
  for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p + i, &v, 8);
  }
}

bool matches_seed(const alloc::Chunk& c, std::uint64_t seed) {
  Rng rng(seed);
  const auto* p = static_cast<const std::byte*>(c.data());
  for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    if (std::memcmp(p + i, &v, 8) != 0) return false;
  }
  return true;
}

TEST(StreamingRestore, RestoresAnExplicitRetainedEpochByteExact) {
  RingStack s(4);
  std::vector<alloc::Chunk*> chunks;
  for (int i = 0; i < 3; ++i) {
    chunks.push_back(
        s.alloc->nvalloc("sr" + std::to_string(i), 256 * KiB, true));
  }
  for (std::uint64_t e = 1; e <= 4; ++e) {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      fill_seeded(*chunks[i], 100 * i + e);
    }
    s.mgr->nvchkptall();
  }
  for (auto* c : chunks) fill_seeded(*c, 999);  // scribble DRAM

  auto rep = s.mgr->restore_streaming(2);
  EXPECT_EQ(rep.status, RestoreStatus::kOkStale);
  EXPECT_EQ(rep.chunks, 3);
  EXPECT_EQ(rep.chunks_rolled_back, 0);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_TRUE(matches_seed(*chunks[i], 100 * i + 2)) << "chunk " << i;
  }

  // Epoch 0 = newest committed version; the ring detour above must not
  // have disturbed it.
  rep = s.mgr->restore_streaming();
  EXPECT_EQ(rep.status, RestoreStatus::kOk);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_TRUE(matches_seed(*chunks[i], 100 * i + 4)) << "chunk " << i;
  }
}

TEST(StreamingRestore, WalksBackWhenTheTargetEpochFailsVerification) {
  RingStack s(4);
  alloc::Chunk* a = s.alloc->nvalloc("wa", 256 * KiB, true);
  alloc::Chunk* b = s.alloc->nvalloc("wb", 256 * KiB, true);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    fill_seeded(*a, 10 + e);
    fill_seeded(*b, 20 + e);
    s.mgr->nvchkptall();
  }
  // Flip a byte inside a's newest committed payload on the device.
  const auto& rec = a->record();
  s.dev->data()[rec.slot_off[rec.committed] + 100] ^= std::byte{0x40};

  fill_seeded(*a, 999);
  fill_seeded(*b, 999);
  const auto rep = s.mgr->restore_streaming();
  EXPECT_EQ(rep.status, RestoreStatus::kOkStale);
  EXPECT_EQ(rep.chunks_rolled_back, 1);
  // a fell back to its newest older epoch that still verifies; b is intact
  // at the newest.
  EXPECT_TRUE(matches_seed(*a, 10 + 2));
  EXPECT_TRUE(matches_seed(*b, 20 + 3));
}

TEST(StreamingRestore, DepthOneReportsMismatchWithNothingToWalkBackTo) {
  RingStack s(1);
  alloc::Chunk* a = s.alloc->nvalloc("d1", 256 * KiB, true);
  fill_seeded(*a, 1);
  s.mgr->nvchkptall();
  fill_seeded(*a, 2);
  s.mgr->nvchkptall();
  const auto& rec = a->record();
  s.dev->data()[rec.slot_off[rec.committed] + 100] ^= std::byte{0x40};
  const auto rep = s.mgr->restore_streaming();
  EXPECT_EQ(rep.status, RestoreStatus::kChecksumMismatch);
  EXPECT_EQ(rep.chunks_rolled_back, 0);
}

// The admission rule: while a streaming restore is in flight, nvchkptall
// defers chunks whose payload has not arrived yet instead of committing
// garbage, and counts every deferral. The throttled device pins the
// restore window open long enough for concurrent checkpoint rounds to
// observe pending chunks deterministically.
TEST(StreamingRestore, CommitsAreDeferredWhileChunksStillStreamIn) {
  RingStack s(2, /*bw_scale=*/0.005);  // read ~40 MB/s: 2 MiB ~= 50 ms
  std::vector<alloc::Chunk*> chunks;
  for (int i = 0; i < 8; ++i) {
    chunks.push_back(
        s.alloc->nvalloc("cd" + std::to_string(i), 256 * KiB, true));
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    fill_seeded(*chunks[i], 300 + i);
  }
  s.mgr->nvchkptall();
  for (auto* c : chunks) fill_seeded(*c, 999);

  CheckpointManager::StreamingRestoreReport rep;
  std::atomic<bool> done{false};
  std::thread restorer([&] {
    rep = s.mgr->restore_streaming();
    done.store(true, std::memory_order_release);
  });
  // The application keeps taking coordinated checkpoints throughout the
  // restore; rounds that meet a still-pending chunk must defer it.
  while (!done.load(std::memory_order_acquire)) {
    s.mgr->nvchkptall();
  }
  restorer.join();

  EXPECT_EQ(rep.status, RestoreStatus::kOk);
  EXPECT_EQ(rep.chunks, 8);
  EXPECT_GT(rep.commits_deferred, 0u);
  EXPECT_EQ(s.mgr->metrics().counter("ckpt.chunks_deferred_restoring")
                .value(),
            rep.commits_deferred);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_TRUE(matches_seed(*chunks[i], 300 + i)) << "chunk " << i;
  }

  // Once the restore drains, every chunk is admitted again: a fresh write
  // + checkpoint + restore round-trips through the normal path.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    fill_seeded(*chunks[i], 400 + i);
  }
  s.mgr->nvchkptall();
  EXPECT_EQ(s.mgr->restore_all(), RestoreStatus::kOk);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_TRUE(matches_seed(*chunks[i], 400 + i)) << "chunk " << i;
  }
}

}  // namespace
}  // namespace nvmcp::core
