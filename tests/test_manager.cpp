// Tests for CheckpointManager: coordinated checkpoints, commit-from-precopy
// vs recopy vs skip outcomes, the pre-copy engine for each policy, learned
// interval/data estimates, and restore.
#include <gtest/gtest.h>

#include <cstring>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/manager.hpp"

namespace nvmcp::core {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() {
    NvmConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.throttle = false;
    dev_ = std::make_unique<NvmDevice>(cfg);
    container_ = std::make_unique<vmem::Container>(*dev_);
    allocator_ = std::make_unique<alloc::ChunkAllocator>(*container_);
  }

  std::unique_ptr<CheckpointManager> make_manager(PrecopyPolicy policy,
                                                  double bw = 0) {
    CheckpointConfig cfg;
    cfg.local_policy = policy;
    cfg.nvm_bw_per_core = bw;
    cfg.precopy_scan_period = 1e-3;
    return std::make_unique<CheckpointManager>(*allocator_, cfg);
  }

  void fill(alloc::Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  std::unique_ptr<NvmDevice> dev_;
  std::unique_ptr<vmem::Container> container_;
  std::unique_ptr<alloc::ChunkAllocator> allocator_;
};

TEST_F(ManagerTest, CheckpointCommitsAllDirtyChunks) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 64 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  const double blocking = mgr->nvchkptall();
  EXPECT_GE(blocking, 0.0);
  EXPECT_EQ(mgr->committed_epoch(), 1u);
  EXPECT_TRUE(a->record().has_committed());
  EXPECT_TRUE(b->record().has_committed());
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.local_checkpoints, 1u);
  EXPECT_EQ(s.chunks_recopied_dirty, 2u);
  EXPECT_EQ(s.bytes_coordinated, 96 * KiB);
}

TEST_F(ManagerTest, NonPersistentChunksAreNotCheckpointed) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* scratch = allocator_->nvalloc("scratch", 16 * KiB, false);
  fill(*scratch, 3);
  mgr->nvchkptall();
  EXPECT_FALSE(scratch->record().has_committed());
}

TEST_F(ManagerTest, UnmodifiedChunkSkippedOnSecondCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  fill(*a, 1);
  mgr->nvchkptall();
  mgr->nvchkptall();  // nothing changed in between
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.chunks_skipped_unmodified, 1u);
  // The committed version still restores the correct (old) data.
  fill(*a, 9);
  EXPECT_EQ(mgr->restore_all(), RestoreStatus::kOk);
}

TEST_F(ManagerTest, EpochAdvancesPerCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 8 * KiB, true);
  for (int i = 1; i <= 3; ++i) {
    fill(*a, static_cast<std::uint64_t>(i));
    mgr->nvchkptall();
    EXPECT_EQ(mgr->committed_epoch(), static_cast<std::uint64_t>(i));
  }
}

TEST_F(ManagerTest, LearnedEstimatesAfterFirstCheckpoint) {
  auto mgr = make_manager(PrecopyPolicy::kDcpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 128 * KiB, true);
  fill(*a, 1);
  EXPECT_EQ(mgr->learned_interval(), 0.0);
  precise_sleep(0.02);
  mgr->nvchkptall();
  EXPECT_GT(mgr->learned_interval(), 0.015);
  EXPECT_EQ(mgr->learned_data_size(), 128.0 * KiB);
}

TEST_F(ManagerTest, CpcEnginePrecopiesInBackground) {
  auto mgr = make_manager(PrecopyPolicy::kCpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 256 * KiB, true);
  fill(*a, 1);
  mgr->start();
  // CPC needs no learning phase: the engine should pick the chunk up.
  const Stopwatch sw;
  while (a->dirty_local() && sw.elapsed() < 2.0) precise_sleep(1e-3);
  EXPECT_FALSE(a->dirty_local());
  EXPECT_EQ(a->precopied_epoch(), 1u);

  // The coordinated step now only commits (no residual copy).
  mgr->nvchkptall();
  const CheckpointStats s = mgr->stats();
  EXPECT_EQ(s.chunks_committed_from_precopy, 1u);
  EXPECT_EQ(s.bytes_coordinated, 0u);
  EXPECT_GE(s.bytes_precopied, 256 * KiB);
  mgr->stop();
}

TEST_F(ManagerTest, DcpcWaitsForLearningPhase) {
  auto mgr = make_manager(PrecopyPolicy::kDcpc);
  alloc::Chunk* a = allocator_->nvalloc("a", 256 * KiB, true);
  fill(*a, 1);
  mgr->start();
  precise_sleep(0.05);
  // No checkpoint yet -> still learning -> no pre-copy.
  EXPECT_TRUE(a->dirty_local());
  EXPECT_EQ(mgr->stats().bytes_precopied, 0u);

  mgr->nvchkptall();  // ends the learning phase
  fill(*a, 2);
  const Stopwatch sw;
  while (a->dirty_local() && sw.elapsed() < 2.0) precise_sleep(1e-3);
  EXPECT_FALSE(a->dirty_local()) << "post-learning, DCPC should pre-copy";
  mgr->stop();
}

TEST_F(ManagerTest, DcpcpSkipsHotChunksUntilPredictedCount) {
  auto mgr = make_manager(PrecopyPolicy::kDcpcp);
  alloc::Chunk* hot = allocator_->nvalloc("hot", 64 * KiB, true);

  // Learning interval: the chunk is modified 3 times. The first pre-copy
  // arms tracking (fresh chunks start unprotected); each following write
  // faults, counts a modification, and is re-armed by the next pre-copy.
  allocator_->precopy_chunk(*hot, mgr->next_epoch());
  for (int m = 0; m < 3; ++m) {
    fill(*hot, static_cast<std::uint64_t>(m));
    allocator_->precopy_chunk(*hot, mgr->next_epoch());  // re-arm tracking
  }
  mgr->nvchkptall();
  EXPECT_EQ(mgr->prediction().predicted(hot->id()), 3u);

  // Next interval: after only one modification the chunk is expected to
  // change twice more -> not ready for pre-copy.
  fill(*hot, 10);
  EXPECT_FALSE(mgr->prediction().ready_for_precopy(
      hot->id(), hot->tracker().mods_in_interval.load()));
}

TEST_F(ManagerTest, NvchkptidCheckpointsSingleChunk) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 16 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 16 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  mgr->nvchkptid(a->id());
  EXPECT_TRUE(a->record().has_committed());
  EXPECT_FALSE(b->record().has_committed());
  EXPECT_THROW(mgr->nvchkptid(12345), NvmcpError);
}

TEST_F(ManagerTest, RestoreAllRecoversEveryChunk) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 32 * KiB, true);
  alloc::Chunk* b = allocator_->nvalloc("b", 32 * KiB, true);
  fill(*a, 1);
  fill(*b, 2);
  mgr->nvchkptall();
  std::vector<std::byte> va(a->size()), vb(b->size());
  std::memcpy(va.data(), a->data(), a->size());
  std::memcpy(vb.data(), b->data(), b->size());
  fill(*a, 8);
  fill(*b, 9);
  EXPECT_EQ(mgr->restore_all(), RestoreStatus::kOk);
  EXPECT_EQ(0, std::memcmp(a->data(), va.data(), a->size()));
  EXPECT_EQ(0, std::memcmp(b->data(), vb.data(), b->size()));
}

TEST_F(ManagerTest, StreamLimiterSlowsBlockingStep) {
  auto fast = make_manager(PrecopyPolicy::kNone, /*bw=*/0);
  alloc::Chunk* a = allocator_->nvalloc("a", 1 * MiB, true);
  fill(*a, 1);
  const double t_fast = fast->nvchkptall();

  auto slow = make_manager(PrecopyPolicy::kNone, /*bw=*/16.0 * MiB);
  fill(*a, 2);
  const double t_slow = slow->nvchkptall();
  EXPECT_GT(t_slow, t_fast);
  EXPECT_GT(t_slow, 0.03);  // 1 MiB at 16 MiB/s ~ 62 ms
}

TEST_F(ManagerTest, StartStopIdempotent) {
  auto mgr = make_manager(PrecopyPolicy::kCpc);
  mgr->start();
  mgr->start();
  mgr->stop();
  mgr->stop();
}

TEST_F(ManagerTest, FaultCountSurfacesInStats) {
  auto mgr = make_manager(PrecopyPolicy::kNone);
  alloc::Chunk* a = allocator_->nvalloc("a", 16 * KiB, true);
  fill(*a, 1);
  mgr->nvchkptall();
  fill(*a, 2);  // one protection fault (chunk was re-armed by the copy)
  EXPECT_GE(mgr->stats().protection_faults, 1u);
}

}  // namespace
}  // namespace nvmcp::core
