// Workload generators: Table IV shape properties and the modification
// patterns each application's analysis relies on.
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "common/units.hpp"

namespace nvmcp::apps {
namespace {

TEST(Workload, GtcShape) {
  const WorkloadSpec s = WorkloadSpec::gtc();
  EXPECT_EQ(s.name, "GTC");
  // ~433 MB/core checkpoint volume (paper Section VI).
  EXPECT_NEAR(static_cast<double>(s.total_ckpt_bytes()),
              433.0 * MiB, 40.0 * MiB);
  // GTC has large init-only chunks (the Fig 8 size-reduction source).
  std::size_t init_only_bytes = 0;
  for (const auto& c : s.chunks) {
    if (c.pattern == ModPattern::kInitOnly) init_only_bytes += c.bytes;
  }
  EXPECT_GT(init_only_bytes, 64 * MiB);
}

TEST(Workload, LammpsShape) {
  const WorkloadSpec s = WorkloadSpec::lammps_rhodo();
  // The paper's Fig 6 describes 31 chunks and hot result arrays.
  EXPECT_EQ(s.chunk_count(), 31u);
  EXPECT_NEAR(static_cast<double>(s.total_ckpt_bytes()),
              410.0 * MiB, 40.0 * MiB);
  int hot = 0;
  for (const auto& c : s.chunks) {
    if (c.pattern == ModPattern::kHotUntilEnd) {
      ++hot;
      EXPECT_GE(c.mods_per_iter, 2);
    }
  }
  EXPECT_GE(hot, 3);
}

TEST(Workload, Cm1IsSmallChunkDominated) {
  const WorkloadSpec s = WorkloadSpec::cm1();
  const auto dist = s.size_distribution();
  // ~40% of chunks under 1 MB (Table IV), almost none above 100 MB.
  EXPECT_NEAR(dist[0], 40.0, 8.0);
  EXPECT_LT(dist[3], 5.0);
}

TEST(Workload, GtcAndLammpsAreLargeChunkDominated) {
  for (const WorkloadSpec& s :
       {WorkloadSpec::gtc(), WorkloadSpec::lammps_rhodo()}) {
    std::size_t large_bytes = 0;
    for (const auto& c : s.chunks) {
      if (c.bytes >= 10 * MiB) large_bytes += c.bytes;
    }
    EXPECT_GT(static_cast<double>(large_bytes),
              0.7 * static_cast<double>(s.total_ckpt_bytes()))
        << s.name;
  }
}

TEST(Workload, DistributionSumsTo100) {
  for (const WorkloadSpec& s : {WorkloadSpec::gtc(),
                                WorkloadSpec::lammps_rhodo(),
                                WorkloadSpec::cm1()}) {
    const auto d = s.size_distribution();
    double sum = 0;
    for (double v : d) sum += v;
    EXPECT_NEAR(sum, 100.0, 1e-6) << s.name;
  }
}

TEST(Workload, UniqueChunkNames) {
  for (const WorkloadSpec& s : {WorkloadSpec::gtc(),
                                WorkloadSpec::lammps_rhodo(),
                                WorkloadSpec::cm1()}) {
    std::set<std::string> names;
    for (const auto& c : s.chunks) {
      EXPECT_TRUE(names.insert(c.name).second)
          << "duplicate chunk name " << c.name << " in " << s.name;
    }
  }
}

// The KV workload is the write shape kWriteLog targets: almost all chunks
// take a handful of small random stores per iteration (half uniform, half
// skewed onto a hot span), with a couple of wholesale-rewritten index
// chunks keeping the mix honest.
TEST(Workload, RedisIsSmallRandomWriteDominated) {
  const WorkloadSpec s = WorkloadSpec::redis();
  EXPECT_EQ(s.chunks.size(), 26u);
  int small_random = 0, uniform = 0, hot = 0, wholesale = 0;
  std::set<std::string> names;
  for (const auto& c : s.chunks) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
    if (c.pattern == ModPattern::kSmallRandom) {
      ++small_random;
      EXPECT_EQ(c.bytes, 4 * MiB) << c.name;
      EXPECT_EQ(c.writes_per_iter, 32) << c.name;
      EXPECT_EQ(c.write_bytes, 64u) << c.name;
      if (c.hot_fraction == 0.0) {
        ++uniform;
      } else {
        EXPECT_NEAR(c.hot_fraction, 0.9, 1e-9) << c.name;
        ++hot;
      }
    } else {
      EXPECT_EQ(c.pattern, ModPattern::kEveryIteration) << c.name;
      EXPECT_EQ(c.bytes, 8 * MiB) << c.name;
      ++wholesale;
    }
  }
  EXPECT_EQ(small_random, 24);
  EXPECT_EQ(uniform, 12);
  EXPECT_EQ(hot, 12);
  EXPECT_EQ(wholesale, 2);
  // Per iteration, logged stores touch 24 * 32 * 64 B = 48 KiB of a
  // 112 MiB checkpoint set -- fault tracking would re-copy ~96 MiB.
  EXPECT_EQ(s.total_ckpt_bytes(), 112 * MiB);
}

// Graph500 BFS: static CSR graph plus frontier-burst search state whose
// per-iteration dirty fraction swings by orders of magnitude -- the
// bimodal commit-size shape the version-ring GC is stressed with.
TEST(Workload, Graph500IsFrontierBurstShaped) {
  const WorkloadSpec s = WorkloadSpec::graph500();
  EXPECT_EQ(s.name, "Graph500-BFS");
  EXPECT_EQ(s.chunks.size(), 11u);
  std::size_t init_only_bytes = 0, frontier_bytes = 0;
  int frontier = 0;
  std::set<std::string> names;
  for (const auto& c : s.chunks) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
    if (c.pattern == ModPattern::kInitOnly) init_only_bytes += c.bytes;
    if (c.pattern == ModPattern::kFrontierBurst) {
      ++frontier;
      frontier_bytes += c.bytes;
      EXPECT_GE(c.burst_levels, 4) << c.name;
    }
  }
  // The static graph dominates the volume (pre-copy's best case) and the
  // search state is a substantial frontier-driven remainder.
  EXPECT_EQ(frontier, 3);
  EXPECT_GT(init_only_bytes, 200 * MiB);
  EXPECT_GT(frontier_bytes, 100 * MiB);
}

// The frontier profile itself: tiny at the root, peaking mid-search at
// the full array, collapsing after, and periodic across search cycles.
TEST(Workload, FrontierFractionProfile) {
  const int levels = 8;
  double peak = 0, root = 1;
  int peak_level = -1;
  for (int l = 0; l < levels; ++l) {
    const double f = frontier_fraction(l, levels);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
    if (f > peak) {
      peak = f;
      peak_level = l;
    }
    if (l == 0) root = f;
  }
  // Mid-search peak at least 8x the root level's fraction.
  EXPECT_GE(peak_level, levels / 2 - 1);
  EXPECT_LE(peak_level, levels / 2 + 1);
  EXPECT_GE(peak / root, 8.0);
  // A new search root restarts the cycle.
  for (int l = 0; l < levels; ++l) {
    EXPECT_DOUBLE_EQ(frontier_fraction(l, levels),
                     frontier_fraction(l + levels, levels));
  }
}

// Metis map-reduce: intermediate buffers that grow append-style through
// the map phase then freeze (kGrowThenFreeze) -- the shape whose dirty
// footprint shrinks to zero once the reduce phase starts, so checkpoints
// taken late in a job should approach the small-result-only volume.
TEST(Workload, MetisIsGrowThenFreezeDominated) {
  const WorkloadSpec s = WorkloadSpec::metis();
  EXPECT_EQ(s.name, "Metis-MR");
  std::size_t grow_bytes = 0, total = 0;
  int grow = 0;
  std::set<std::string> names;
  for (const auto& c : s.chunks) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
    total += c.bytes;
    if (c.pattern == ModPattern::kGrowThenFreeze) {
      ++grow;
      grow_bytes += c.bytes;
      // A grow phase must be a strict, non-empty prefix of the period:
      // grow_iters == period would never freeze, 0 would never grow.
      EXPECT_GT(c.grow_iters, 0) << c.name;
      EXPECT_LT(c.grow_iters, c.period) << c.name;
    }
  }
  EXPECT_EQ(grow, 8);
  // Intermediate map output is the plurality of the checkpoint volume
  // (~192 of ~388 MiB), ahead of the immutable inputs.
  EXPECT_GT(static_cast<double>(grow_bytes),
            0.45 * static_cast<double>(total));
  EXPECT_EQ(s.total_ckpt_bytes(), total);
}

TEST(Workload, SaneIterationParameters) {
  for (const WorkloadSpec& s : {WorkloadSpec::gtc(),
                                WorkloadSpec::lammps_rhodo(),
                                WorkloadSpec::cm1(),
                                WorkloadSpec::graph500()}) {
    EXPECT_GT(s.compute_per_iter, 0.0);
    EXPECT_GT(s.iters_per_checkpoint, 0);
    EXPECT_GT(s.comm_bytes_per_iter, 0u);
  }
}

}  // namespace
}  // namespace nvmcp::apps
