#include <gtest/gtest.h>

#include "common/clock.hpp"

namespace nvmcp {
namespace {

TEST(Clock, NowIsMonotone) {
  const double a = now_seconds();
  const double b = now_seconds();
  EXPECT_GE(b, a);
}

TEST(Clock, StopwatchMeasuresSleep) {
  Stopwatch sw;
  precise_sleep(0.02);
  const double t = sw.elapsed();
  EXPECT_GE(t, 0.019);
  EXPECT_LT(t, 0.2);  // generous: loaded CI machines
}

TEST(Clock, StopwatchReset) {
  Stopwatch sw;
  precise_sleep(0.01);
  sw.reset();
  EXPECT_LT(sw.elapsed(), 0.005);
}

TEST(Clock, PreciseSleepShortDurationsAccurate) {
  // Sub-millisecond sleeps are the pre-copy engine's cadence; they must
  // not overshoot wildly.
  const Stopwatch sw;
  for (int i = 0; i < 10; ++i) precise_sleep(200e-6);
  const double t = sw.elapsed();
  EXPECT_GE(t, 10 * 200e-6 * 0.9);
  EXPECT_LT(t, 10 * 200e-6 * 5 + 0.01);
}

TEST(Clock, ZeroAndNegativeSleepReturnImmediately) {
  const Stopwatch sw;
  precise_sleep(0.0);
  precise_sleep(-1.0);
  EXPECT_LT(sw.elapsed(), 0.005);
}

TEST(Clock, SleepUntilPastDeadlineReturns) {
  const Stopwatch sw;
  sleep_until(Clock::now() - std::chrono::milliseconds(5));
  EXPECT_LT(sw.elapsed(), 0.005);
}

}  // namespace
}  // namespace nvmcp
