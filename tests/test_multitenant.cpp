// Multi-tenant arena: QoS scheduler share math, admission ordering,
// per-tenant quota enforcement (ring self-eviction, GC isolation), and
// reattach semantics. The long cross-tenant chaos trial runs under the
// *Acceptance* filter (stress label) alongside the fault campaigns.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fault/campaign.hpp"
#include "tenant/arena.hpp"

namespace nvmcp::tenant {
namespace {

// ---------------------------------------------------------------------------
// BandwidthScheduler: share math and work-conserving redistribution.

TEST(BandwidthScheduler, BaseSharesFollowWeightTimesBoostPowPriority) {
  BandwidthScheduler sched({/*total_bw=*/1700.0, /*priority_boost=*/4.0});
  StreamGroup* a = sched.register_tenant("a", 1.0, 2);  // share 16
  StreamGroup* b = sched.register_tenant("b", 1.0, 0);  // share 1
  // Both idle: each keeps its guaranteed base C*s/S.
  EXPECT_NEAR(a->granted(), 1600.0, 1e-6);
  EXPECT_NEAR(b->granted(), 100.0, 1e-6);
}

TEST(BandwidthScheduler, ActiveTenantClaimsIdleBase) {
  BandwidthScheduler sched({1700.0, 4.0});
  StreamGroup* a = sched.register_tenant("a", 1.0, 2);
  StreamGroup* b = sched.register_tenant("b", 1.0, 0);
  sched.note_active(*a);
  // The lone active tenant takes its base plus the idle tenant's
  // unclaimed base (work conservation); the idle tenant keeps its base
  // for pre-copy trickle.
  EXPECT_NEAR(a->granted(), 1700.0, 1e-6);
  EXPECT_NEAR(b->granted(), 100.0, 1e-6);
  // Both active: back to pure fair share.
  sched.note_active(*b);
  EXPECT_NEAR(a->granted(), 1600.0, 1e-6);
  EXPECT_NEAR(b->granted(), 100.0, 1e-6);
  // A goes idle: B inherits A's base on top of its own.
  sched.note_idle(*a);
  EXPECT_NEAR(a->granted(), 1600.0, 1e-6);
  EXPECT_NEAR(b->granted(), 1700.0, 1e-6);
  sched.note_idle(*b);
}

TEST(BandwidthScheduler, WeightScalesWithinPriority) {
  BandwidthScheduler sched({300.0, 4.0});
  StreamGroup* a = sched.register_tenant("a", 2.0, 0);  // share 2
  StreamGroup* b = sched.register_tenant("b", 1.0, 0);  // share 1
  EXPECT_NEAR(a->granted(), 200.0, 1e-6);
  EXPECT_NEAR(b->granted(), 100.0, 1e-6);
}

TEST(BandwidthScheduler, UnlimitedSchedulerLeavesTrunksUnthrottled) {
  BandwidthScheduler sched({0.0, 4.0});
  StreamGroup* a = sched.register_tenant("a", 1.0, 2);
  sched.note_active(*a);
  EXPECT_EQ(a->granted(), 0.0);  // 0 = unlimited
  EXPECT_TRUE(a->trunk()->unlimited());
}

TEST(BandwidthScheduler, ReregisterReturnsSameGroupWithUpdatedQoS) {
  BandwidthScheduler sched({400.0, 4.0});
  StreamGroup* a = sched.register_tenant("a", 1.0, 0);
  StreamGroup* b = sched.register_tenant("b", 3.0, 0);
  EXPECT_NEAR(a->granted(), 100.0, 1e-6);
  // Reattach path: same name -> same group object, new weight applied.
  StreamGroup* a2 = sched.register_tenant("a", 1.0, 1);  // share 4 now
  EXPECT_EQ(a, a2);
  EXPECT_EQ(a2->priority(), 1);
  EXPECT_NEAR(a->granted(), 400.0 * 4 / 7, 1e-6);
  EXPECT_NEAR(b->granted(), 400.0 * 3 / 7, 1e-6);
}

TEST(BandwidthScheduler, SetPriorityRebalancesLive) {
  BandwidthScheduler sched({500.0, 4.0});
  StreamGroup* a = sched.register_tenant("a", 1.0, 0);
  StreamGroup* b = sched.register_tenant("b", 1.0, 0);
  EXPECT_NEAR(a->granted(), 250.0, 1e-6);
  sched.set_priority(*a, 2);  // 16:1
  EXPECT_EQ(a->priority(), 2);
  EXPECT_NEAR(a->granted(), 500.0 * 16 / 17, 1e-6);
  EXPECT_NEAR(b->granted(), 500.0 * 1 / 17, 1e-6);
}

// ---------------------------------------------------------------------------
// AdmissionController: budget, policies, priority-first queue.

TEST(AdmissionController, FastPathUnderBudget) {
  AdmissionController ac({/*max_inflight=*/2, AdmissionPolicy::kReject});
  EXPECT_TRUE(ac.admit(0).admitted);
  EXPECT_TRUE(ac.admit(0).admitted);
  EXPECT_EQ(ac.inflight(), 2);
  ac.release();
  ac.release();
  EXPECT_EQ(ac.inflight(), 0);
}

TEST(AdmissionController, RejectPolicyFailsFastOverBudget) {
  AdmissionController ac({1, AdmissionPolicy::kReject});
  EXPECT_TRUE(ac.admit(0).admitted);
  const auto out = ac.admit(2);  // priority does not buy a slot in kReject
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.waited, 0.0);
  EXPECT_EQ(ac.rejections(), 1u);
  ac.release();
  EXPECT_TRUE(ac.admit(0).admitted);
  ac.release();
}

TEST(AdmissionController, QueueTimesOutWhenSlotNeverFrees) {
  AdmissionController ac({1, AdmissionPolicy::kQueue, /*timeout=*/0.1});
  EXPECT_TRUE(ac.admit(0).admitted);
  const auto out = ac.admit(0);
  EXPECT_FALSE(out.admitted);
  EXPECT_GE(out.waited, 0.05);
  EXPECT_EQ(ac.waits(), 1u);
  EXPECT_EQ(ac.rejections(), 1u);
  EXPECT_GT(ac.wait_seconds(), 0.0);
  ac.release();
}

TEST(AdmissionController, QueuedRoundAdmittedOnRelease) {
  AdmissionController ac({1, AdmissionPolicy::kQueue, 5.0});
  EXPECT_TRUE(ac.admit(0).admitted);
  std::thread releaser([&] {
    precise_sleep(0.05);
    ac.release();
  });
  const auto out = ac.admit(0);
  releaser.join();
  EXPECT_TRUE(out.admitted);
  EXPECT_GT(out.waited, 0.0);
  ac.release();
}

TEST(AdmissionController, HigherPriorityWaiterAdmittedFirst) {
  AdmissionController ac({1, AdmissionPolicy::kQueue, 5.0});
  EXPECT_TRUE(ac.admit(1).admitted);  // hold the only slot

  std::atomic<int> order{0};
  std::atomic<int> low_rank{-1};
  std::atomic<int> high_rank{-1};
  std::thread low([&] {
    const auto out = ac.admit(0);
    ASSERT_TRUE(out.admitted);
    low_rank = order.fetch_add(1);
    ac.release();
  });
  precise_sleep(0.05);  // low is queued first...
  std::thread high([&] {
    const auto out = ac.admit(2);
    ASSERT_TRUE(out.admitted);
    high_rank = order.fetch_add(1);
    ac.release();
  });
  precise_sleep(0.05);
  ac.release();  // ...but the released slot must go to high first
  low.join();
  high.join();
  EXPECT_LT(high_rank.load(), low_rank.load());
  EXPECT_EQ(ac.inflight(), 0);
}

TEST(AdmissionController, NoBargingPastQueuedWaiters) {
  AdmissionController ac({1, AdmissionPolicy::kQueue, 5.0});
  EXPECT_TRUE(ac.admit(0).admitted);
  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    const auto out = ac.admit(0);
    ASSERT_TRUE(out.admitted);
    waiter_admitted = true;
    ac.release();
  });
  precise_sleep(0.05);
  ac.release();
  // A late arrival must queue behind the existing waiter, not steal the
  // freed slot on the fast path.
  const auto late = ac.admit(0);
  EXPECT_TRUE(late.admitted);
  EXPECT_TRUE(waiter_admitted.load());
  waiter.join();
  ac.release();
}

// ---------------------------------------------------------------------------
// TenantArena: end-to-end tenant lifecycle, quotas, isolation.

TenantArena::Options small_arena(int ring_depth,
                                 std::size_t capacity = 96 * MiB) {
  TenantArena::Options opts;
  opts.device.capacity = capacity;
  opts.device.throttle = false;
  opts.ring_depth = ring_depth;
  opts.max_inflight = 4;
  opts.scheduler_bw = 0;  // unlimited: these tests exercise capacity paths
  return opts;
}

TenantSpec spec_for(const std::string& name, std::size_t quota = 0) {
  TenantSpec ts;
  ts.name = name;
  ts.quota_bytes = quota;
  ts.track_mode = vmem::TrackMode::kSoftware;
  ts.ckpt.local_policy = core::PrecopyPolicy::kNone;
  return ts;
}

void fill(alloc::Chunk& c, std::uint64_t seed) {
  Rng rng(seed);
  auto* p = static_cast<std::byte*>(c.data());
  for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(p + i, &v, 8);
  }
  c.notify_write();
}

TEST(TenantArena, NamespacedChunksDoNotCollide) {
  TenantArena arena(small_arena(1));
  TenantHandle& a = arena.create_tenant(spec_for("a"));
  TenantHandle& b = arena.create_tenant(spec_for("b"));
  alloc::Chunk* ca = a.nvalloc("x", 64 * KiB, true);
  alloc::Chunk* cb = b.nvalloc("x", 64 * KiB, true);
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_NE(a.chunk_id("x"), b.chunk_id("x"));
  EXPECT_EQ(a.find("x"), ca);
  EXPECT_EQ(b.find("x"), cb);
  EXPECT_EQ(arena.find("a"), &a);
  EXPECT_EQ(arena.find("nope"), nullptr);
  EXPECT_THROW(arena.create_tenant(spec_for("a")), NvmcpError);
}

TEST(TenantArena, CheckpointRoundCommitsAndCountsMetrics) {
  TenantArena arena(small_arena(2));
  TenantHandle& t = arena.create_tenant(spec_for("solo"));
  alloc::Chunk* c = t.nvalloc("v", 256 * KiB, true);
  fill(*c, 42);
  const auto res = t.checkpoint();
  EXPECT_TRUE(res.admitted);
  EXPECT_GT(res.blocking, 0.0);
  const telemetry::Counter* commits =
      arena.metrics().find_counter("tenant.solo.commits");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->value(), 1u);
  EXPECT_EQ(arena.admission().inflight(), 0);
}

TEST(TenantArena, QuotaPeakStaysUnderLimitViaRingSelfEviction) {
  // Quota fits ~3 slots of the single 64 KiB chunk while the ring depth
  // would retain 4: steady-state commits must recycle the tenant's own
  // oldest epoch rather than overshoot (or starve).
  TenantArena arena(small_arena(4));
  const std::size_t quota = 3 * 64 * KiB;
  TenantHandle& t = arena.create_tenant(spec_for("capped", quota));
  alloc::Chunk* c = t.nvalloc("v", 64 * KiB, true);
  for (int r = 0; r < 8; ++r) {
    fill(*c, 100 + static_cast<std::uint64_t>(r));
    ASSERT_TRUE(t.checkpoint().admitted) << "round " << r;
  }
  EXPECT_LE(t.quota().peak(), t.quota().limit());
  EXPECT_GT(t.quota().used(), 0u);
  // The chunk still retains at least one committed epoch to restore from.
  EXPECT_GE(t.allocator().retained_epochs(*c).size(), 1u);
}

TEST(TenantArena, QuotaPressureNeverEvictsNeighbourEpochs) {
  TenantArena arena(small_arena(4));
  TenantHandle& hog = arena.create_tenant(spec_for("hog", 3 * 64 * KiB));
  TenantHandle& calm = arena.create_tenant(spec_for("calm"));
  alloc::Chunk* ch = hog.nvalloc("v", 64 * KiB, true);
  alloc::Chunk* cc = calm.nvalloc("v", 64 * KiB, true);
  for (int r = 0; r < 3; ++r) {
    fill(*cc, 900 + static_cast<std::uint64_t>(r));
    ASSERT_TRUE(calm.checkpoint().admitted);
  }
  const std::size_t calm_retained =
      calm.allocator().retained_epochs(*cc).size();
  ASSERT_GE(calm_retained, 3u);
  // Hammer the capped tenant well past its quota.
  for (int r = 0; r < 10; ++r) {
    fill(*ch, 200 + static_cast<std::uint64_t>(r));
    ASSERT_TRUE(hog.checkpoint().admitted);
  }
  EXPECT_LE(hog.quota().peak(), hog.quota().limit());
  // The hog's quota pressure resolved inside its own ring: the calm
  // tenant's retained epochs are untouched.
  EXPECT_EQ(calm.allocator().retained_epochs(*cc).size(), calm_retained);
}

TEST(TenantArena, OverQuotaAllocationThrows) {
  // Depth-1 arena: nvalloc charges both version slots upfront, so the
  // over-budget allocation fails at acquisition.
  TenantArena arena(small_arena(1));
  TenantHandle& t =
      arena.create_tenant(spec_for("capped", 2 * (128 * KiB)));
  EXPECT_NE(t.nvalloc("fits", 128 * KiB, true), nullptr);
  EXPECT_THROW(t.nvalloc("overflow", 128 * KiB, true), NvmcpError);
  EXPECT_GE(t.quota().rejections(), 1u);
  EXPECT_LE(t.quota().peak(), t.quota().limit());
}

TEST(TenantArena, ReattachRestoresDataWithoutDoubleCharging) {
  TenantArena arena(small_arena(2));
  const std::size_t quota = 4 * 256 * KiB;
  {
    TenantHandle& t = arena.create_tenant(spec_for("phoenix", quota));
    alloc::Chunk* c = t.nvalloc("v", 256 * KiB, true);
    fill(*c, 7);
    ASSERT_TRUE(t.checkpoint().admitted);
  }
  const std::size_t used_before = [&] {
    return arena.find("phoenix")->quota().used();
  }();
  ASSERT_GT(used_before, 0u);

  TenantHandle& t2 = arena.reattach_tenant("phoenix");
  // Same quota meter, same stream group, footprint still charged.
  EXPECT_EQ(t2.quota().used(), used_before);
  alloc::Chunk* c2 = t2.nvalloc("v", 256 * KiB, true);
  ASSERT_NE(c2, nullptr);
  EXPECT_TRUE(c2->restored());
  // Re-adopting the persisted chunk must not charge the quota again.
  EXPECT_LE(t2.quota().used(), used_before);
  Rng rng(7);
  std::uint64_t got0;
  std::memcpy(&got0, c2->data(), 8);
  EXPECT_EQ(got0, rng.next_u64());
  // And committing again still fits the quota.
  fill(*c2, 8);
  EXPECT_TRUE(t2.checkpoint().admitted);
  EXPECT_LE(t2.quota().peak(), t2.quota().limit());
}

// ---------------------------------------------------------------------------
// Cross-tenant chaos (stress label, *Acceptance* filter): tenant A dies
// mid-commit while B commits and C restores against one shared arena.

TEST(CrossTenantAcceptance, CrashMidCommitIsInvisibleToNeighbours) {
  for (std::uint64_t seed : {0xfee1ull, 0xbeefull, 0x5ca1eull}) {
    fault::CrossTenantSpec spec;
    spec.seed = seed;
    const fault::CrossTenantResult res =
        fault::CampaignRunner::run_cross_tenant(spec);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.detail;
    EXPECT_EQ(res.b_mismatches, 0) << res.detail;
    EXPECT_EQ(res.c_mismatches, 0) << res.detail;
    EXPECT_EQ(res.a_failed, 0) << res.detail;
    EXPECT_GE(res.a_restored_latest, spec.crash_prefix);
  }
}

TEST(CrossTenantAcceptance, QuotaedTenantsSurviveChaosRound) {
  fault::CrossTenantSpec spec;
  spec.seed = 0x9a0b;
  spec.quota_bytes = 4 * 3 * 64 * KiB;  // tight: forces ring recycling
  const fault::CrossTenantResult res =
      fault::CampaignRunner::run_cross_tenant(spec);
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace nvmcp::tenant
