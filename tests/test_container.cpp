#include <gtest/gtest.h>

#include "common/error.hpp"
#include "vmem/container.hpp"

namespace nvmcp::vmem {
namespace {

NvmConfig cfg(std::size_t cap = 8 * MiB) {
  NvmConfig c;
  c.capacity = cap;
  c.throttle = false;
  return c;
}

TEST(Container, FreshDeviceGetsFreshMetadata) {
  NvmDevice dev(cfg());
  Container c(dev);
  EXPECT_FALSE(c.attached_existing());
  EXPECT_GT(dev.root(), 0u);
}

TEST(Container, AllocationsArePageAlignedAndDisjoint) {
  NvmDevice dev(cfg());
  Container c(dev);
  const std::size_t a = c.alloc_region(100);
  const std::size_t b = c.alloc_region(5000);
  const std::size_t d = c.alloc_region(1);
  EXPECT_TRUE(is_aligned(a, kNvmPageSize));
  EXPECT_TRUE(is_aligned(b, kNvmPageSize));
  EXPECT_TRUE(is_aligned(d, kNvmPageSize));
  EXPECT_GE(b, a + kNvmPageSize);
  EXPECT_GE(d, b + 2 * kNvmPageSize);
}

TEST(Container, FreedRegionsAreReused) {
  NvmDevice dev(cfg());
  Container c(dev);
  const std::size_t a = c.alloc_region(64 * KiB);
  c.free_region(a, 64 * KiB);
  const std::size_t b = c.alloc_region(32 * KiB);
  EXPECT_EQ(b, a);  // first fit reuses the freed block
  const std::size_t d = c.alloc_region(32 * KiB);
  EXPECT_EQ(d, a + 32 * KiB);  // remainder of the split block
}

TEST(Container, ExhaustionThrows) {
  NvmDevice dev(cfg(1 * MiB));
  Container c(dev);
  EXPECT_THROW(c.alloc_region(4 * MiB), NvmcpError);
}

TEST(Container, AccountingTracksUse) {
  NvmDevice dev(cfg());
  Container c(dev);
  const std::size_t before = c.bytes_allocated();
  c.alloc_region(128 * KiB);
  EXPECT_EQ(c.bytes_allocated(), before + 128 * KiB);
  EXPECT_LE(c.bytes_free(), dev.capacity() - 128 * KiB);
}

TEST(Container, CursorPersistsAcrossAttach) {
  NvmDevice dev(cfg());
  std::size_t a;
  {
    Container c(dev);
    a = c.alloc_region(64 * KiB);
  }
  // Same device (still open): attach path via a second container requires
  // reopened(); emulate by checking the metadata cursor moved.
  MetadataRegion meta = MetadataRegion::attach(dev);
  EXPECT_GE(meta.header().alloc_cursor, a + 64 * KiB);
}

}  // namespace
}  // namespace nvmcp::vmem
