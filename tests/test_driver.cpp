// Workload driver end-to-end: multi-rank runs against the real library,
// pre-copy reducing blocking time, checkpoint-size reduction for GTC, and
// remote checkpointing through the shared link.
#include <gtest/gtest.h>

#include "apps/driver.hpp"

namespace nvmcp::apps {
namespace {

DriverConfig quick(WorkloadSpec spec) {
  DriverConfig cfg;
  cfg.spec = std::move(spec);
  cfg.spec.iters_per_checkpoint = 2;
  cfg.ranks = 2;
  cfg.iterations = 4;
  cfg.size_scale = 1.0 / 512;
  cfg.time_scale = 1.0 / 256;
  cfg.ckpt.nvm_bw_per_core = 400.0 * MiB;
  cfg.ckpt.precopy_scan_period = 1e-3;
  return cfg;
}

TEST(Driver, RunsToCompletionAndCheckpoints) {
  DriverConfig cfg = quick(WorkloadSpec::gtc());
  cfg.ckpt.local_policy = core::PrecopyPolicy::kNone;
  const DriverResult r = run_workload(cfg);
  EXPECT_GT(r.wall_seconds, 0.0);
  // 2 ranks x (4 iterations / every 2) = 4 coordinated checkpoints total.
  EXPECT_EQ(r.ckpt.local_checkpoints, 4u);
  EXPECT_EQ(r.blocking_per_checkpoint.size(), 2u);
  EXPECT_GT(r.ckpt.bytes_coordinated, 0u);
  EXPECT_GT(r.protection_faults, 0u);
}

TEST(Driver, CheckpointDisabledMeansNoNvmTraffic) {
  DriverConfig cfg = quick(WorkloadSpec::cm1());
  cfg.checkpoint_enabled = false;
  const DriverResult r = run_workload(cfg);
  EXPECT_EQ(r.ckpt.local_checkpoints, 0u);
  // Only chunk-table metadata lands in NVM; no payload traffic.
  EXPECT_LT(r.nvm.bytes_written, 2 * MiB);
}

TEST(Driver, PrecopyReducesBlockingTime) {
  DriverConfig cfg = quick(WorkloadSpec::gtc());
  cfg.iterations = 6;
  cfg.ckpt.local_policy = core::PrecopyPolicy::kNone;
  const DriverResult no_pc = run_workload(cfg);
  cfg.ckpt.local_policy = core::PrecopyPolicy::kCpc;
  const DriverResult pc = run_workload(cfg);
  EXPECT_LT(pc.ckpt.local_blocking_seconds,
            no_pc.ckpt.local_blocking_seconds);
  EXPECT_GT(pc.ckpt.bytes_precopied, 0u);
  EXPECT_LT(pc.ckpt.bytes_coordinated, no_pc.ckpt.bytes_coordinated);
}

TEST(Driver, GtcInitOnlyChunksAreSkipped) {
  DriverConfig cfg = quick(WorkloadSpec::gtc());
  cfg.iterations = 6;
  cfg.ckpt.local_policy = core::PrecopyPolicy::kNone;
  const DriverResult r = run_workload(cfg);
  // The static GTC arrays are only written at iteration 0; later
  // checkpoints must skip them (Fig 8's checkpoint-size reduction).
  EXPECT_GT(r.ckpt.chunks_skipped_unmodified, 0u);
}

TEST(Driver, RemoteCheckpointingShipsData) {
  DriverConfig cfg = quick(WorkloadSpec::lammps_rhodo());
  cfg.remote_enabled = true;
  cfg.remote.policy = core::PrecopyPolicy::kCpc;
  cfg.remote.interval = 0.08;
  cfg.remote.scan_period = 2e-3;
  const DriverResult r = run_workload(cfg);
  EXPECT_GT(r.remote.bytes_sent, 0u);
  EXPECT_GT(r.link.checkpoint_bytes, 0u);
  EXPECT_GT(r.peak_ckpt_link_rate, 0.0);
  EXPECT_GE(r.remote.coordinations, 1u);
}

TEST(Driver, EfficiencyBelowOneButPositive) {
  DriverConfig cfg = quick(WorkloadSpec::cm1());
  const DriverResult r = run_workload(cfg);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LT(r.efficiency, 1.0);
  EXPECT_GT(r.ideal_seconds, 0.0);
}

TEST(Driver, SoftwareTrackingModeWorksToo) {
  DriverConfig cfg = quick(WorkloadSpec::cm1());
  cfg.track_mode = vmem::TrackMode::kSoftware;
  // Software mode: the driver reports writes via notify_write(), so no
  // protection faults occur but dirty tracking still works.
  const DriverResult r = run_workload(cfg);
  EXPECT_EQ(r.protection_faults, 0u);
  EXPECT_GT(r.ckpt.local_checkpoints, 0u);
}

TEST(Driver, InvalidRanksRejected) {
  DriverConfig cfg = quick(WorkloadSpec::cm1());
  cfg.ranks = 0;
  EXPECT_THROW(run_workload(cfg), NvmcpError);
}

}  // namespace
}  // namespace nvmcp::apps
