// Coverage for the logging and table-writer utilities (benches depend on
// the CSV mirroring; log levels gate the library's diagnostics).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "common/table.hpp"

namespace nvmcp {
namespace {

TEST(Log, LevelGateWorks) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kWarn);  // restore the default
}

TEST(Log, EmittingBelowLevelIsSafeNoop) {
  set_log_level(LogLevel::kError);
  log_debug("must not crash %d", 1);
  log_info("nor this %s", "either");
  log_warn("filtered %f", 2.0);
  set_log_level(LogLevel::kWarn);
}

TEST(TableWriter, NumericFormatting) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(42.0, 0), "42");
  EXPECT_EQ(TableWriter::pct(0.4567), "45.7%");
  EXPECT_EQ(TableWriter::pct(0.4567, 0), "46%");
}

TEST(TableWriter, CsvMirrorsRows) {
  namespace fs = std::filesystem;
  const fs::path csv = fs::temp_directory_path() /
                       ("nvmcp_table_" + std::to_string(::getpid()) +
                        ".csv");
  fs::remove(csv);
  {
    TableWriter t("unit test table", {"a", "b"}, csv.string());
    t.row({"1", "x"});
    t.row({"2", "y"});
    t.print();
  }
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,x\n2,y\n");
  fs::remove(csv);
}

TEST(TableWriter, DestructorPrintsOnce) {
  // Printing explicitly and then destructing must not double-print;
  // verified by redirecting nothing -- just exercise the path.
  TableWriter t("dtor table", {"col"});
  t.row({"v"});
  t.print();
}  // destructor runs here

TEST(TableWriter, ShortRowsPadSafely) {
  TableWriter t("ragged", {"a", "b", "c"});
  t.row({"only-one"});
  t.row({"one", "two", "three"});
  t.print();  // must not crash on missing cells
}

}  // namespace
}  // namespace nvmcp
