// Interconnect model: transfer timing, bandwidth sharing between traffic
// classes (the contention behind remote-checkpoint "noise"), and the
// utilization timeline used for peak-usage measurements (Fig 10).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/units.hpp"
#include "net/interconnect.hpp"

namespace nvmcp::net {
namespace {

TEST(Interconnect, TransferTimingMatchesBandwidth) {
  Interconnect link(20.0 * MiB, 0.05);
  const double secs = link.transfer(2 * MiB, TrafficClass::kApplication);
  EXPECT_NEAR(secs, 0.1, 0.04);
}

TEST(Interconnect, StatsSplitByClass) {
  Interconnect link(1000.0 * MiB, 0.05);
  link.transfer(1 * MiB, TrafficClass::kApplication);
  link.transfer(3 * MiB, TrafficClass::kCheckpoint);
  const LinkStats s = link.stats();
  EXPECT_EQ(s.app_bytes, 1 * MiB);
  EXPECT_EQ(s.checkpoint_bytes, 3 * MiB);
  EXPECT_GT(s.checkpoint_seconds, 0.0);
}

TEST(Interconnect, TransferCopyMovesPayload) {
  Interconnect link(0.5e9, 0.05);
  std::vector<std::byte> src(256 * KiB, std::byte{0x3c}), dst(256 * KiB);
  link.transfer_copy(dst.data(), src.data(), src.size(),
                     TrafficClass::kCheckpoint);
  EXPECT_EQ(dst, src);
}

TEST(Interconnect, ConcurrentFlowsShareBandwidth) {
  Interconnect link(20.0 * MiB, 0.05);
  const Stopwatch sw;
  std::thread app([&] { link.transfer(1 * MiB, TrafficClass::kApplication); });
  std::thread ckp([&] { link.transfer(1 * MiB, TrafficClass::kCheckpoint); });
  app.join();
  ckp.join();
  // 2 MiB total through a 20 MiB/s pipe: ~0.1 s, not ~0.05 s.
  EXPECT_GT(sw.elapsed(), 0.08);
}

TEST(Interconnect, TimelineSpreadsLongTransfers) {
  Interconnect link(10.0 * MiB, 0.05);
  link.transfer(2 * MiB, TrafficClass::kCheckpoint);  // ~0.2 s
  const TimeSeries& tl = link.checkpoint_timeline();
  // Bytes should appear in several 50 ms buckets, not one spike.
  int nonzero = 0;
  for (std::size_t i = 0; i < tl.size(); ++i) nonzero += tl.value(i) > 0;
  EXPECT_GE(nonzero, 3);
  EXPECT_NEAR(tl.total(), 2.0 * MiB, 1.0);
}

TEST(Interconnect, PeakRateBoundedByLinkSpeed) {
  Interconnect link(10.0 * MiB, 0.05);
  link.transfer(4 * MiB, TrafficClass::kCheckpoint);
  EXPECT_LE(link.peak_checkpoint_rate(), 10.5 * MiB);
  EXPECT_GT(link.peak_checkpoint_rate(), 1.0 * MiB);
}

TEST(Interconnect, ResetAccountingClears) {
  Interconnect link(100.0 * MiB, 0.05);
  link.transfer(1 * MiB, TrafficClass::kCheckpoint);
  link.reset_accounting();
  EXPECT_EQ(link.stats().checkpoint_bytes, 0u);
  EXPECT_EQ(link.checkpoint_timeline().total(), 0.0);
}

TEST(Interconnect, SetBandwidthTakesEffect) {
  Interconnect link(1.0 * MiB, 0.05);
  link.set_bandwidth(500.0 * MiB);
  const double secs = link.transfer(5 * MiB, TrafficClass::kApplication);
  EXPECT_LT(secs, 0.1);
}

}  // namespace
}  // namespace nvmcp::net
