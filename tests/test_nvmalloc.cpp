// Tests for the nvmalloc chunk allocator (Table III API): allocation,
// shadow slots, checkpoint/commit/restore primitives, versioning,
// nvattach/nvrealloc/nvdelete, and restart restore.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/nvmalloc.hpp"
#include "common/rng.hpp"

namespace nvmcp::alloc {
namespace {

class NvmallocTest : public ::testing::Test {
 protected:
  NvmallocTest() {
    NvmConfig cfg;
    cfg.capacity = 32 * MiB;
    cfg.throttle = false;
    dev_ = std::make_unique<NvmDevice>(cfg);
    container_ = std::make_unique<vmem::Container>(*dev_);
    allocator_ = std::make_unique<ChunkAllocator>(*container_);
  }

  void fill(Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    auto* p = static_cast<std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      std::memcpy(p + i, &v, 8);
    }
  }

  bool matches(const Chunk& c, std::uint64_t seed) {
    Rng rng(seed);
    const auto* p = static_cast<const std::byte*>(c.data());
    for (std::size_t i = 0; i + 8 <= c.size(); i += 8) {
      const std::uint64_t v = rng.next_u64();
      if (std::memcmp(p + i, &v, 8) != 0) return false;
    }
    return true;
  }

  std::unique_ptr<NvmDevice> dev_;
  std::unique_ptr<vmem::Container> container_;
  std::unique_ptr<ChunkAllocator> allocator_;
};

TEST(GenId, StableAndNonZero) {
  EXPECT_EQ(genid("zion"), genid("zion"));
  EXPECT_NE(genid("zion"), genid("zion0"));
  EXPECT_NE(genid(""), 0u);
}

TEST_F(NvmallocTest, AllocReturnsWritableDram) {
  Chunk* c = allocator_->nvalloc("var_a", 100 * KiB, true);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->size(), 100 * KiB);
  EXPECT_TRUE(c->dirty_local());  // fresh chunks are dirty by definition
  fill(*c, 1);
  EXPECT_TRUE(matches(*c, 1));
}

TEST_F(NvmallocTest, DuplicateIdThrows) {
  allocator_->nvalloc("dup", 4 * KiB, true);
  EXPECT_THROW(allocator_->nvalloc("dup", 4 * KiB, true), NvmcpError);
}

TEST_F(NvmallocTest, ZeroSizeOrIdThrows) {
  EXPECT_THROW(allocator_->nvalloc(std::uint64_t{0}, 4 * KiB, true),
               NvmcpError);
  EXPECT_THROW(allocator_->nvalloc("empty", 0, true), NvmcpError);
}

TEST_F(NvmallocTest, Nv2dAllocSizesCorrectly) {
  Chunk* c = allocator_->nv2dalloc("matrix", 100, 50, 8, true);
  EXPECT_EQ(c->size(), 100u * 50u * 8u);
}

TEST_F(NvmallocTest, CheckpointAndRestoreRoundTrip) {
  Chunk* c = allocator_->nvalloc("state", 64 * KiB, true);
  fill(*c, 42);
  allocator_->checkpoint_chunk(*c, 1);
  EXPECT_FALSE(c->dirty_local());

  fill(*c, 99);  // diverge the working copy
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
  EXPECT_TRUE(matches(*c, 42));
}

TEST_F(NvmallocTest, TwoVersionsAlternateSlots) {
  Chunk* c = allocator_->nvalloc("versioned", 16 * KiB, true);
  fill(*c, 1);
  allocator_->checkpoint_chunk(*c, 1);
  const std::uint32_t slot1 = c->record().committed;
  fill(*c, 2);
  allocator_->checkpoint_chunk(*c, 2);
  const std::uint32_t slot2 = c->record().committed;
  EXPECT_NE(slot1, slot2);
  EXPECT_EQ(c->record().epoch[slot2], 2u);
  EXPECT_EQ(c->record().epoch[slot1], 1u);
}

TEST_F(NvmallocTest, PrecopyThenCommitSkipsSecondCopy) {
  Chunk* c = allocator_->nvalloc("pc", 32 * KiB, true);
  fill(*c, 5);
  allocator_->precopy_chunk(*c, 1);
  EXPECT_FALSE(c->dirty_local());
  EXPECT_EQ(c->precopied_epoch(), 1u);
  const auto written_before = dev_->stats().bytes_written;
  allocator_->commit_chunk(*c, 1);
  // Commit is metadata-only: no payload rewrite.
  EXPECT_LT(dev_->stats().bytes_written - written_before, 4 * KiB);
  fill(*c, 6);
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
  EXPECT_TRUE(matches(*c, 5));
}

TEST_F(NvmallocTest, CommitWrongEpochThrows) {
  Chunk* c = allocator_->nvalloc("wrong", 8 * KiB, true);
  fill(*c, 1);
  allocator_->precopy_chunk(*c, 3);
  EXPECT_THROW(allocator_->commit_chunk(*c, 4), NvmcpError);
}

TEST_F(NvmallocTest, WriteAfterPrecopyRedirties) {
  Chunk* c = allocator_->nvalloc("redirty", 16 * KiB, true);
  fill(*c, 1);
  allocator_->precopy_chunk(*c, 1);
  EXPECT_FALSE(c->dirty_local());
  fill(*c, 2);  // faults and re-marks dirty (mprotect tracking)
  EXPECT_TRUE(c->dirty_local());
}

TEST_F(NvmallocTest, RestoreWithoutCommitReportsNoData) {
  Chunk* c = allocator_->nvalloc("never", 8 * KiB, true);
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kNoData);
}

TEST_F(NvmallocTest, ChecksumMismatchDetected) {
  Chunk* c = allocator_->nvalloc("sum", 8 * KiB, true);
  fill(*c, 1);
  allocator_->checkpoint_chunk(*c, 1);
  // Corrupt the committed slot directly (bit rot).
  const auto& rec = c->record();
  dev_->data()[rec.slot_off[rec.committed] + 100] ^= std::byte{0xFF};
  EXPECT_EQ(allocator_->restore_chunk(*c),
            RestoreStatus::kChecksumMismatch);
}

TEST_F(NvmallocTest, ReadCommittedCopiesPayload) {
  Chunk* c = allocator_->nvalloc("rc", 8 * KiB, true);
  fill(*c, 11);
  allocator_->checkpoint_chunk(*c, 1);
  std::vector<std::byte> out(c->size());
  EXPECT_TRUE(allocator_->read_committed(*c, out.data()));
  EXPECT_EQ(0, std::memcmp(out.data(), c->data(), c->size()));
}

TEST_F(NvmallocTest, NvattachUsesSoftwareTracking) {
  std::vector<std::byte> app_buf(10000, std::byte{1});
  Chunk* c = allocator_->nvattach(genid("attached"), app_buf.data(),
                                  app_buf.size(), "attached");
  EXPECT_EQ(c->data(), app_buf.data());
  allocator_->checkpoint_chunk(*c, 1);
  EXPECT_FALSE(c->dirty_local());
  app_buf[5] = std::byte{2};
  c->notify_write();
  EXPECT_TRUE(c->dirty_local());
}

TEST_F(NvmallocTest, NvreallocGrowsPreservingData) {
  Chunk* c = allocator_->nvalloc("grow", 16 * KiB, true);
  fill(*c, 21);
  allocator_->checkpoint_chunk(*c, 1);
  std::vector<std::byte> prefix(16 * KiB);
  std::memcpy(prefix.data(), c->data(), prefix.size());

  Chunk* g = allocator_->nvrealloc(genid("grow"), 64 * KiB);
  EXPECT_EQ(g->size(), 64 * KiB);
  EXPECT_EQ(0, std::memcmp(g->data(), prefix.data(), prefix.size()));
  EXPECT_TRUE(g->dirty_local());

  // Committed payload was carried across: restore gets the old prefix.
  fill(*g, 77);
  EXPECT_EQ(allocator_->restore_chunk(*g), RestoreStatus::kOk);
  EXPECT_EQ(0, std::memcmp(g->data(), prefix.data(), prefix.size()));
}

TEST_F(NvmallocTest, NvdeleteFreesAndForgets) {
  allocator_->nvalloc("gone", 8 * KiB, true);
  allocator_->nvdelete(genid("gone"));
  EXPECT_EQ(allocator_->find(genid("gone")), nullptr);
  EXPECT_THROW(allocator_->nvdelete(genid("gone")), NvmcpError);
  // Id can be reused after deletion.
  Chunk* again = allocator_->nvalloc("gone", 8 * KiB, true);
  EXPECT_NE(again, nullptr);
}

TEST_F(NvmallocTest, StatsReflectAllocations) {
  allocator_->nvalloc("s1", 10 * KiB, true);
  allocator_->nvalloc("s2", 20 * KiB, false);
  const AllocStats s = allocator_->stats();
  EXPECT_EQ(s.chunk_count, 2u);
  EXPECT_EQ(s.total_payload_bytes, 30 * KiB);
  EXPECT_GE(s.nvm_bytes_reserved, 2 * 30 * KiB);
}

TEST_F(NvmallocTest, PerStreamLimiterThrottlesCheckpoint) {
  Chunk* c = allocator_->nvalloc("slow", 1 * MiB, true);
  fill(*c, 1);
  BandwidthLimiter stream(32.0 * MiB);
  const double secs = allocator_->checkpoint_chunk(*c, 1, &stream);
  const double expected = static_cast<double>(c->size()) / (32.0 * MiB);
  EXPECT_GT(secs, 0.6 * expected);
}

// Property-style sweep: round trip across many sizes including page
// boundaries.
class NvmallocSizeSweep : public NvmallocTest,
                          public ::testing::WithParamInterface<std::size_t> {
};

TEST_P(NvmallocSizeSweep, RoundTripAnySize) {
  const std::size_t size = GetParam();
  Chunk* c = allocator_->nvalloc("sweep", size, true);
  fill(*c, size);
  allocator_->checkpoint_chunk(*c, 1);
  fill(*c, size + 1);
  EXPECT_EQ(allocator_->restore_chunk(*c), RestoreStatus::kOk);
  EXPECT_TRUE(matches(*c, size));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NvmallocSizeSweep,
    ::testing::Values(64, 100, 4096, 4097, 8191, 65536, 100000,
                      1048576, 1048577));

}  // namespace
}  // namespace nvmcp::alloc
